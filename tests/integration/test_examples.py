"""The example scripts run clean end to end (quick ones only)."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "PUT took" in out
        assert "after 31 s" in out
        assert "compress-on-insert" in out
        assert "traced GET served by tier1" in out
        assert "stats snapshot at" in out
        assert "tiera_requests_total{op=get} = 2" in out

    def test_dedup_backup(self):
        out = run_example("dedup_backup.py")
        assert "savings  : 99%" in out
        assert "after decrypt response" in out

    def test_sharded_tiera(self):
        out = run_example("sharded_tiera.py")
        assert "all 300 objects verified readable" in out

    def test_remote_server(self):
        out = run_example("remote_server.py")
        assert "server stopped cleanly" in out

    @pytest.mark.slow
    def test_failure_recovery(self):
        out = run_example("failure_recovery.py", timeout=300.0)
        assert "monitor: EBS failed" in out
        assert "minute 9" in out
