"""Control layer: dispatch, timers, foreground/background semantics."""

import pytest

from repro.core.actions import Action
from repro.core.conditions import AttrRef, Comparison, EvalScope, Literal
from repro.core.events import ActionEvent, ThresholdEvent, TimerEvent
from repro.core.objects import ObjectMeta
from repro.core.policy import Rule
from repro.core.responses import Copy, Response, Store
from repro.core.selectors import InsertObject, NamedObjects, ObjectsWhere
from repro.simcloud.resources import RequestContext
from tests.core.conftest import build_instance


class Probe(Response):
    """A response that records when it executed (context time)."""

    def __init__(self):
        self.calls = []

    def execute(self, scope, ctx):
        self.calls.append(ctx.time)


class Failing(Response):
    def execute(self, scope, ctx):
        from repro.core.errors import PolicyError

        raise PolicyError("boom")


def insert_action(instance, key="k", data=b"v"):
    meta = instance.create_object(key, len(data))
    return Action(kind="insert", key=key, meta=meta, data=data)


class TestActionDispatch:
    def test_matching_foreground_rule_runs_inline(self, registry, ctx):
        probe = Probe()
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[Rule(ActionEvent("insert"), [probe], name="p")],
        )
        inst.control.dispatch_action(insert_action(inst), ctx)
        assert len(probe.calls) == 1
        assert inst.control.fired["p"] == 1

    def test_non_matching_rule_skipped(self, registry, ctx):
        probe = Probe()
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[Rule(ActionEvent("delete"), [probe], name="p")],
        )
        handled = inst.control.dispatch_action(insert_action(inst), ctx)
        assert not handled
        assert probe.calls == []

    def test_background_rule_deferred_to_clock(self, registry, ctx):
        probe = Probe()
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[
                Rule(ActionEvent("insert"), [probe], background=True, name="p")
            ],
        )
        inst.control.dispatch_action(insert_action(inst), ctx)
        assert probe.calls == []  # not yet
        inst.clock.advance(0.001)
        assert len(probe.calls) == 1

    def test_foreground_cost_lands_on_client(self, registry):
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6), ("tier2", "EBS", 10 ** 7)],
            rules=[
                Rule(
                    ActionEvent("insert"),
                    [Store(InsertObject(), ("tier1", "tier2"))],
                    name="wt",
                )
            ],
        )
        ctx = RequestContext(inst.clock)
        inst.control.dispatch_action(insert_action(inst, data=b"x" * 4096), ctx)
        assert ctx.elapsed > 0.003  # paid for the EBS write inline

    def test_background_cost_not_on_client(self, registry):
        probe = Probe()
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6), ("tier2", "EBS", 10 ** 7)],
            rules=[
                Rule(
                    ActionEvent("insert"),
                    [Copy(InsertObject(), "tier2"), probe],
                    background=True,
                    name="bg",
                )
            ],
        )
        ctx = RequestContext(inst.clock)
        inst.control.dispatch_action(insert_action(inst, data=b"x" * 4096), ctx)
        assert ctx.elapsed < 0.001
        inst.clock.advance(1)
        assert len(probe.calls) == 1

    def test_rule_evaluation_charges_overhead(self, registry):
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[Rule(ActionEvent("delete"), [Probe()], name="p")],
            eval_overhead=1e-4,
        )
        ctx = RequestContext(inst.clock)
        inst.control.dispatch_action(insert_action(inst), ctx)
        assert ctx.elapsed == pytest.approx(1e-4)


class TestTimerRules:
    def test_timer_fires_repeatedly(self, registry):
        probe = Probe()
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[Rule(TimerEvent(10), [probe], name="t")],
        )
        inst.clock.advance(35)
        assert len(probe.calls) == 3

    def test_removed_timer_stops(self, registry):
        probe = Probe()
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[Rule(TimerEvent(10), [probe], name="t")],
        )
        inst.clock.advance(15)
        inst.policy.remove("t")
        inst.clock.advance(50)
        assert len(probe.calls) == 1

    def test_added_timer_starts(self, registry):
        probe = Probe()
        inst = build_instance(registry, [("tier1", "Memcached", 10 ** 6)])
        inst.policy.add(Rule(TimerEvent(5), [probe], name="t"))
        inst.clock.advance(11)
        assert len(probe.calls) == 2

    def test_timer_errors_are_swallowed_and_recorded(self, registry):
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[Rule(TimerEvent(5), [Failing()], name="t")],
        )
        inst.clock.advance(6)  # must not raise
        assert inst.control.background_errors
        assert inst.control.background_errors[0][0] == "t"

    def test_shutdown_cancels_timers(self, registry):
        probe = Probe()
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[Rule(TimerEvent(5), [probe], name="t")],
        )
        inst.control.shutdown()
        inst.clock.advance(30)
        assert probe.calls == []


class TestThresholdRules:
    def _rule(self, probe, background=False):
        return Rule(
            ThresholdEvent(
                Comparison(">=", AttrRef(("tier1", "filled")), Literal(0.5)),
                background=background,
            ),
            [probe],
            name="th",
        )

    def test_foreground_threshold_fires_inline(self, registry, ctx):
        probe = Probe()
        inst = build_instance(
            registry, [("tier1", "Memcached", 1000)], rules=[self._rule(probe)]
        )
        inst.create_object("a", 600)
        inst.write_to_tier("a", b"x" * 600, "tier1", ctx)
        inst.control.evaluate_thresholds(ctx)
        assert len(probe.calls) == 1

    def test_background_threshold_defers(self, registry, ctx):
        probe = Probe()
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 1000)],
            rules=[self._rule(probe, background=True)],
        )
        inst.create_object("a", 600)
        inst.write_to_tier("a", b"x" * 600, "tier1", ctx)
        inst.control.evaluate_thresholds(ctx)
        assert probe.calls == []
        inst.clock.advance(0.01)
        assert len(probe.calls) == 1

    def test_edge_trigger_through_dispatch(self, registry, ctx):
        probe = Probe()
        inst = build_instance(
            registry, [("tier1", "Memcached", 1000)], rules=[self._rule(probe)]
        )
        inst.create_object("a", 600)
        inst.write_to_tier("a", b"x" * 600, "tier1", ctx)
        inst.control.evaluate_thresholds(ctx)
        inst.control.evaluate_thresholds(ctx)  # still above: no refire
        assert len(probe.calls) == 1
