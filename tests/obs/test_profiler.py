"""The scoped profiler: wall sections, virtual attribution, rendering."""

import json
import time

from repro.obs.profiler import (
    NULL_PROFILER,
    Profiler,
    cprofile_capture,
    render_profile,
    trace_breakdown,
    virtual_breakdown,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Span


class TestWallSections:
    def test_sections_nest_into_a_tree(self):
        p = Profiler()
        with p.section("outer"):
            with p.section("inner"):
                pass
            with p.section("inner"):
                pass
        report = p.wall_report()
        assert [s["name"] for s in report["sections"]] == ["outer"]
        outer = report["sections"][0]
        assert outer["count"] == 1
        inner = outer["children"][0]
        assert inner["name"] == "inner"
        assert inner["count"] == 2  # same path aggregates into one node

    def test_section_times_accumulate(self):
        p = Profiler()
        with p.section("work"):
            time.sleep(0.01)
        with p.section("work"):
            time.sleep(0.01)
        node = p.wall_report()["sections"][0]
        assert node["seconds"] >= 0.02
        assert node["count"] == 2

    def test_total_is_sum_of_top_level_sections(self):
        p = Profiler()
        with p.section("a"):
            time.sleep(0.005)
        with p.section("b"):
            time.sleep(0.005)
        report = p.wall_report()
        assert report["total_seconds"] == sum(
            s["seconds"] for s in report["sections"]
        )

    def test_disabled_profiler_records_nothing(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.section("x"):
            pass
        assert NULL_PROFILER.wall_report()["sections"] == []

    def test_reset_clears_the_tree(self):
        p = Profiler()
        with p.section("x"):
            pass
        p.reset()
        assert p.wall_report()["sections"] == []

    def test_exception_inside_section_still_closes_it(self):
        p = Profiler()
        try:
            with p.section("risky"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        report = p.wall_report()
        assert report["sections"][0]["count"] == 1
        # The stack unwound: a new section is top-level, not a child.
        with p.section("after"):
            pass
        assert {s["name"] for s in p.wall_report()["sections"]} == {
            "risky", "after"
        }


class TestCProfile:
    def test_capture_lists_functions_by_cumtime(self):
        with cprofile_capture(limit=5) as result:
            sorted(range(1000))
        functions = result["functions"]
        assert len(functions) <= 5
        assert all(
            {"function", "calls", "tottime", "cumtime"} <= set(r) for r in functions
        )
        cums = [r["cumtime"] for r in functions]
        assert cums == sorted(cums, reverse=True)


class TestVirtualBreakdown:
    def _registry_with_activity(self):
        registry = MetricsRegistry()
        tier_op = registry.histogram("tiera_tier_op_seconds")
        tier_op.observe(0.010, service="ebs-1", op="put")
        tier_op.observe(0.002, service="memcached-1", op="get")
        request = registry.histogram("tiera_request_seconds")
        request.observe(0.012, op="put")
        request.observe(0.003, op="get")
        rule = registry.counter("tiera_rule_seconds_total")
        rule.inc(0.011, rule="write-through", mode="foreground")
        return registry

    def test_breakdown_from_snapshot_delta(self):
        registry = self._registry_with_activity()
        report = virtual_breakdown(None, registry.snapshot())
        assert report["services"]["ebs-1"] == 0.010
        assert report["requests"]["put"]["count"] == 1
        assert report["requests"]["put"]["mean"] == 0.012
        assert report["rules"] == {"write-through (foreground)": 0.011}
        assert report["total_service_seconds"] == 0.012

    def test_before_snapshot_subtracts(self):
        registry = self._registry_with_activity()
        before = registry.snapshot()
        registry.get("tiera_request_seconds").observe(0.100, op="put")
        report = virtual_breakdown(before, registry.snapshot())
        assert report["requests"] == {
            "put": {"count": 1, "seconds": 0.100, "mean": 0.100}
        }
        assert report["services"] == {}


class TestTraceBreakdown:
    def test_aggregates_tier_ops_and_rules(self):
        root = Span("put k", "request", 0.0)
        tier = root.child("tier1.put", "tier-op", 0.0, service="tier1-svc")
        tier.finish(0.004)
        rule = root.child("write-through", "rule", 0.0)
        rule.finish(0.010)
        root.finish(0.010)
        report = trace_breakdown([root])
        assert report["traces"] == 1
        assert report["request_seconds"] == 0.010
        assert report["components"]["tier-op:tier1-svc"]["seconds"] == 0.004
        assert report["components"]["rule:write-through"]["count"] == 1


class TestRendering:
    def test_render_profile_text_sections(self):
        p = Profiler()
        with p.section("drive"):
            with p.section("op:get"):
                time.sleep(0.002)
        report = {
            "measured_wall_seconds": 0.01,
            "coverage": 0.95,
            "wall": p.wall_report(),
            "virtual": {
                "services": {"ebs-1": 1.5},
                "requests": {"get": {"count": 10, "seconds": 1.6, "mean": 0.16}},
                "rules": {},
                "total_service_seconds": 1.5,
                "total_request_seconds": 1.6,
            },
        }
        text = render_profile(report)
        assert "wall-clock (per code region)" in text
        assert "drive" in text
        assert "op:get" in text
        assert "service ebs-1" in text
        assert "95.0%" in text

    def test_report_is_json_serializable(self):
        p = Profiler()
        with p.section("x"):
            pass
        json.dumps({"wall": p.wall_report()})
