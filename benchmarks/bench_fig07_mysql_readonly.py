"""Figure 7: MySQL read-only throughput and 95th-percentile latency.

Paper setup: unmodified MySQL on (a) a bare EBS volume, (b) the Tiera
``MemcachedReplicated`` instance, (c) the Tiera ``MemcachedEBS``
instance; sysbench OLTP read-only with the special distribution, 8
threads, sweeping the hot fraction over 1-30 %.

Paper result: MemcachedReplicated highest throughput/lowest latency
(+47 % over EBS), MemcachedEBS similar to MemcachedReplicated, EBS
falling steeply as the hot set outgrows the instance caches.
"""

from __future__ import annotations

from repro.bench.deployments import (
    mysql_on_ebs,
    mysql_on_memcached_ebs,
    mysql_on_memcached_replicated,
)
from repro.bench.report import (
    TIER_BREAKDOWN_HEADERS,
    format_table,
    ms,
    tier_breakdown_rows,
)
from repro.bench.runner import run_closed_loop
from repro.workloads.sysbench import SysbenchOltp, load_table

ROWS = 50_000
HOT_FRACTIONS = (0.01, 0.10, 0.20, 0.30)
CLIENTS = 8
DURATION = 12.0
WARMUP = 3.0

DEPLOYMENTS = (
    ("MySQL On EBS", lambda: mysql_on_ebs(os_cache="8M")),
    ("Tiera MemcachedReplicated", lambda: mysql_on_memcached_replicated(mem="512M")),
    ("Tiera MemcachedEBS", lambda: mysql_on_memcached_ebs(mem="512M")),
)


def run_sysbench_sweep(read_only: bool):
    """Shared by Figures 7 and 8: the full deployment × hot-% sweep.

    Returns the figure's rows plus a per-tier breakdown (from the
    observability registry) for each deployment × hot-% cell.
    """
    rows = []
    breakdown = []
    for name, builder in DEPLOYMENTS:
        deployment = builder()
        load_table(deployment.db, ROWS, clock=deployment.clock)
        for hot in HOT_FRACTIONS:
            workload = SysbenchOltp(
                deployment.db, ROWS, hot_fraction=hot, read_only=read_only
            )
            result = run_closed_loop(
                deployment.clock, clients=CLIENTS, duration=DURATION,
                op_fn=workload, warmup=WARMUP, obs=deployment.cluster.obs,
            )
            rows.append(
                [
                    name,
                    f"{hot:.0%}",
                    round(result.throughput, 1),
                    round(ms(result.latencies.p95()), 1),
                ]
            )
            breakdown.extend(
                tier_breakdown_rows(f"{name} @{hot:.0%}", result.tier_report)
            )
    return rows, breakdown


def test_fig07_mysql_readonly(benchmark, emit):
    table = {}

    def experiment():
        table["rows"], table["breakdown"] = run_sysbench_sweep(read_only=True)

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Figure 7 — sysbench read-only, 8 threads (TPS and p95 latency)",
        ["deployment", "% hot", "TPS", "p95 (ms)"],
        table["rows"],
        note=(
            "Paper: MemcachedReplicated +47% TPS over EBS; MemcachedEBS "
            "similar to MemcachedReplicated; EBS declines ~115→~45 TPS "
            "as %hot grows."
        ),
    )
    text += "\n\n" + format_table(
        "Figure 7 — per-tier activity during the measured window",
        list(TIER_BREAKDOWN_HEADERS),
        table["breakdown"],
        note="From the tiera_* metrics registry: per-service op counts, "
             "simulated seconds charged, and each tier's share of GETs.",
    )
    emit("fig07_mysql_readonly", text)
    # Sanity assertions on the paper's claims (shape, not absolutes).
    by = {(r[0], r[1]): r[2] for r in table["rows"]}
    assert by[("Tiera MemcachedReplicated", "1%")] > 1.3 * by[("MySQL On EBS", "1%")]
    assert by[("MySQL On EBS", "1%")] > 2.0 * by[("MySQL On EBS", "30%")]
    # The registry-backed breakdown is present for the Tiera deployments.
    assert any(row[0].startswith("Tiera") for row in table["breakdown"])
