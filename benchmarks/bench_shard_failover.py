"""Shard failover under replication: kill 1 of 4 shards mid-workload.

The paper's flexibility story assumes an instance can be rebuilt from
its policy; the cluster layer extends that to *losing a member*: with a
replication factor of 3 and a write quorum of 2, taking a whole shard
down (hard outage, then a flapping recovery) must not dent availability
below 99.9 % and must lose **zero acknowledged writes**.  Misses park
as hinted handoffs; recovery drains the hints and the Merkle
anti-entropy sweep converges the replica groups back to zero
divergence, after which cluster fsck comes back clean.

A second leg crashes the migrator at every journaled boundary of an
``add_shard`` and proves :meth:`recover` makes the membership change
exactly-once (see ``docs/CLUSTER.md``).

Standalone use::

    python benchmarks/bench_shard_failover.py           # full table
    python benchmarks/bench_shard_failover.py --smoke   # CI gate: a
        deterministic JSON summary (byte-identical across same-seed runs)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.failover import run_failover, run_migration_crash
from repro.bench.report import format_table

SMOKE_KWARGS = dict(
    records=24, duration=150.0, clients=3,
    outage_at=30.0, outage=60.0, flap_duration=30.0,
)

AVAILABILITY_FLOOR = 0.999


def _gate(report, crash_report) -> list:
    """The acceptance invariants; returns the list of violations."""
    failures = []
    if report["availability"]["overall"] < AVAILABILITY_FLOOR:
        failures.append(
            f"availability {report['availability']['overall']:.4f} "
            f"< {AVAILABILITY_FLOOR}"
        )
    if report["acked_write_loss"]:
        failures.append(
            f"{report['acked_write_loss']} acked writes lost: "
            f"{report['lost_keys']}"
        )
    if report["hints"]["pending"]:
        failures.append(f"{report['hints']['pending']} hints never drained")
    if report["anti_entropy"]["final_divergent"]:
        failures.append(
            f"{report['anti_entropy']['final_divergent']} replica groups "
            "still divergent after anti-entropy"
        )
    if not report["fsck"]["clean"]:
        failures.append(f"cluster fsck found {report['fsck']['findings']}")
    if not crash_report["clean"]:
        bad = [e for e in crash_report["swept"] if not e["ok"]]
        failures.append(f"migration crash sweep: {len(bad)} dirty recoveries")
    return failures


def _rows(report):
    hints = report["hints"]
    ae = report["anti_entropy"]
    return [
        ["availability (overall)", report["availability"]["overall"]],
        ["operations", report["workload"]["operations"]],
        ["acked writes / lost", f"{report['acked_writes']} / "
                                f"{report['acked_write_loss']}"],
        ["hints recorded / replayed / pending",
         f"{hints['recorded']} / {hints['replayed']} / {hints['pending']}"],
        ["anti-entropy runs / repairs / divergent",
         f"{ae['runs']} / {ae['repairs']} / {ae['final_divergent']}"],
        ["detector transitions", len(report["detector_transitions"])],
        ["fsck clean", report["fsck"]["clean"]],
    ]


def test_shard_failover(benchmark, emit):
    out = {}

    def experiment():
        out["report"] = run_failover(**SMOKE_KWARGS)
        out["crash"] = run_migration_crash(records=8)

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report = out["report"]
    emit("shard_failover", format_table(
        "Shard failover: kill 1 of 4 replicated shards mid-workload",
        ["metric", "value"],
        _rows(report),
        note=(
            "replication_factor=3 write_quorum=2; the victim takes a hard\n"
            "outage then flaps back; hints drain on recovery and\n"
            "anti-entropy converges the replica groups."
        ),
    ))
    failures = _gate(report, out["crash"])
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Replicated shard failover and migration-crash sweep."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="print the deterministic JSON summary and gate on the "
             "failover invariants (used by CI, byte-diffed across runs)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_failover(**SMOKE_KWARGS)
        crash_report = run_migration_crash(records=8)
        print(json.dumps(
            {"failover": report, "migration_crash": crash_report},
            indent=2, sort_keys=True,
        ))
        failures = _gate(report, crash_report)
        if failures:
            print("FAIL: " + "; ".join(failures), file=sys.stderr)
            return 1
        return 0
    report = run_failover()
    crash_report = run_migration_crash()
    print(format_table(
        "Shard failover: kill 1 of 4 replicated shards mid-workload",
        ["metric", "value"],
        _rows(report),
        note=(
            f"seed {report['seed']}, victim {report['victim']}, "
            f"{report['workload']['duration']:.0f}s window"
        ),
    ))
    swept = crash_report["swept"]
    print(f"migration crash sweep: {len(swept)} armed boundaries over "
          f"{crash_report['crash_points_visited']} visits, "
          f"{'all clean' if crash_report['clean'] else 'DIRTY'}")
    failures = _gate(report, crash_report)
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
