"""The ordered, runtime-mutable set of tiers inside an instance.

Declaration order matters: the paper's specifications always list tiers
fastest-first (Memcached, then EBS, then S3), and the server reads an
object from the earliest declared tier that holds it.  Tiers can be
added and removed while running — "Tiera also supports the
addition/removal of tiers at runtime" (§5) — which the Figure 17
failure-reconfiguration experiment exercises.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.core.errors import UnknownTierError
from repro.tiers.base import Tier


class TierSet:
    """Ordered name → :class:`~repro.tiers.base.Tier` mapping."""

    def __init__(self, tiers: Optional[List[Tier]] = None):
        self._tiers: "OrderedDict[str, Tier]" = OrderedDict()
        for tier in tiers or []:
            self.add(tier)

    def add(self, tier: Tier) -> None:
        if tier.name in self._tiers:
            raise ValueError(f"tier {tier.name!r} already present")
        self._tiers[tier.name] = tier

    def remove(self, name: str) -> Tier:
        if name not in self._tiers:
            raise UnknownTierError(name)
        return self._tiers.pop(name)

    def get(self, name: str) -> Tier:
        try:
            return self._tiers[name]
        except KeyError:
            raise UnknownTierError(name) from None

    def has(self, name: str) -> bool:
        return name in self._tiers

    def names(self) -> List[str]:
        return list(self._tiers.keys())

    def first(self) -> Tier:
        """The first-declared (fastest) tier."""
        if not self._tiers:
            raise UnknownTierError("<empty tier set>")
        return next(iter(self._tiers.values()))

    def ordered(self) -> List[Tier]:
        return list(self._tiers.values())

    def __iter__(self) -> Iterator[Tier]:
        return iter(self._tiers.values())

    def __len__(self) -> int:
        return len(self._tiers)

    def __contains__(self, name: str) -> bool:
        return name in self._tiers
