"""2014-era AWS price book and cost accounting.

The paper's cost panels (Figures 9b, 11b, 13b) report the *total cost of
storage per month* for each instance configuration, priced from the AWS
price sheet of the day.  Absolute dollars matter less than the ratios:
memory (ElastiCache) is two orders of magnitude dearer per GB than S3,
with EBS in between, and S3 additionally charges per request (which is
what the ``storeOnce`` experiment, Figure 12, reduces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

GB = 1024 ** 3


@dataclass(frozen=True)
class PriceBook:
    """Monthly storage prices ($/GB-month) and request prices ($/request)."""

    # cache.m1.small was $0.068/hr for 1.3 GB usable: ~$38/GB-month.
    memcached_gb_month: float = 35.00
    ebs_gb_month: float = 0.10
    s3_gb_month: float = 0.03
    ephemeral_gb_month: float = 0.00  # bundled with the EC2 instance
    # S3 requests: $0.005 per 1,000 PUTs, $0.004 per 10,000 GETs.
    s3_put_request: float = 0.005 / 1000
    s3_get_request: float = 0.004 / 10000
    # EBS I/O: $0.10 per million requests.
    ebs_io_request: float = 0.10 / 1_000_000

    _STORAGE_RATES = {
        "memcached": "memcached_gb_month",
        "ebs": "ebs_gb_month",
        "s3": "s3_gb_month",
        "ephemeral": "ephemeral_gb_month",
    }

    def storage_rate(self, kind: str) -> float:
        """$/GB-month for a service kind (memcached/ebs/s3/ephemeral)."""
        try:
            return getattr(self, self._STORAGE_RATES[kind])
        except KeyError:
            raise ValueError(f"unknown storage kind {kind!r}") from None

    def monthly_storage_cost(self, kind: str, provisioned_bytes: int) -> float:
        """Monthly cost of keeping ``provisioned_bytes`` provisioned."""
        return self.storage_rate(kind) * provisioned_bytes / GB


@dataclass
class CostMeter:
    """Accumulates request counts for per-request charges.

    Services tick the meter on every operation; benchmarks read it to
    report request-charge deltas (Figure 12 plots the raw S3 request
    count falling as the duplicate fraction rises).
    """

    book: PriceBook = field(default_factory=PriceBook)
    counts: Dict[str, int] = field(default_factory=dict)

    def record(self, counter: str, n: int = 1) -> None:
        self.counts[counter] = self.counts.get(counter, 0) + n

    def count(self, counter: str) -> int:
        return self.counts.get(counter, 0)

    def request_charges(self) -> float:
        """Total request-based charges accumulated so far, in dollars.

        Services meter under ``<kind>.<op>`` (``ebs.get``/``ebs.put`` —
        see ``StorageService._count``); the ``ebs.read``/``ebs.write``
        aliases are kept for callers that record I/O manually."""
        ebs_io = (
            self.count("ebs.get") + self.count("ebs.put")
            + self.count("ebs.read") + self.count("ebs.write")
        )
        return (
            self.count("s3.put") * self.book.s3_put_request
            + self.count("s3.get") * self.book.s3_get_request
            + ebs_io * self.book.ebs_io_request
        )

    def reset(self) -> None:
        self.counts.clear()
