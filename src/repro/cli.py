"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's prototype is operated:

* ``validate <spec-file>`` — parse and compile an instance
  specification, report its tiers and rules (the compile check the
  prototype lacked).
* ``serve <spec-file> [--port P] [--arg name=value ...]`` — compile the
  spec against a wall-clock simulated cloud and serve it over the RPC
  protocol, like the prototype's Thrift server on an EC2 instance.
* ``cost <spec-file>`` — price the specified configuration per month.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.core.server import TieraServer
from repro.simcloud.clock import WallClock
from repro.simcloud.cluster import Cluster
from repro.spec import SpecSyntaxError, compile_spec, parse
from repro.tiers.registry import TierRegistry


def _parse_args_option(pairs: List[str]) -> Dict[str, object]:
    """--arg t=30 --arg cap=40960 → {"t": 30.0, "cap": 40960.0}."""
    out: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --arg {pair!r}: expected name=value")
        name, _, raw = pair.partition("=")
        try:
            out[name] = float(raw) if "." in raw else int(raw)
        except ValueError:
            out[name] = raw
    return out


def _compile_file(path: str, args: Dict[str, object], wall: bool = False):
    with open(path) as handle:
        source = handle.read()
    clock = WallClock() if wall else None
    cluster = Cluster(clock=clock)
    registry = TierRegistry(cluster)
    instance = compile_spec(source, registry, args=args)
    return cluster, instance


def cmd_validate(options) -> int:
    try:
        spec = parse(open(options.spec).read())
    except SpecSyntaxError as exc:
        print(f"syntax error: {exc}", file=sys.stderr)
        return 1
    print(f"instance {spec.name}")
    if spec.params:
        print("  parameters:", ", ".join(
            f"{p.type_name or ''} {p.name}".strip() for p in spec.params
        ))
    for tier in spec.tiers:
        size = tier.size if tier.size is not None else "unbounded"
        print(f"  tier {tier.tier_name}: {tier.product}, size={size}")
    print(f"  events: {len(spec.events)}")
    if not spec.params:
        # A fully-ground spec can be compile-checked too.
        try:
            _compile_file(options.spec, {})
        except Exception as exc:  # pragma: no cover - message path
            print(f"compile error: {exc}", file=sys.stderr)
            return 1
        print("  compiles cleanly")
    return 0


def cmd_cost(options) -> int:
    args = _parse_args_option(options.arg)
    try:
        _, instance = _compile_file(options.spec, args)
    except (SpecSyntaxError, Exception) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{instance.name}: ${instance.monthly_cost():.2f}/month "
          f"(${instance.cost_per_gb_month():.2f}/GB-month)")
    for tier in instance.tiers:
        cap = tier.capacity if tier.capacity is not None else 0
        marginal = 0.0 if tier.colocated else (
            instance.price_book.monthly_storage_cost(tier.kind, cap)
        )
        print(f"  {tier.name} ({tier.kind}): ${marginal:.2f}")
    return 0


def cmd_serve(options) -> int:
    from repro.rpc import TieraRpcServer

    args = _parse_args_option(options.arg)
    try:
        cluster, instance = _compile_file(options.spec, args, wall=True)
    except (SpecSyntaxError, Exception) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    server = TieraRpcServer(
        TieraServer(instance), host=options.host, port=options.port
    ).start()
    print(f"{instance.name} serving on {server.host}:{server.port} "
          f"(tiers: {', '.join(instance.tiers.names())})")
    print("press Ctrl-C to stop")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        instance.shutdown()
        cluster.clock.shutdown()
        print("stopped")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Tiera middleware (Middleware 2014 reproduction)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate", help="parse/compile-check a spec")
    validate.add_argument("spec")
    validate.set_defaults(func=cmd_validate)

    cost = commands.add_parser("cost", help="price a specification per month")
    cost.add_argument("spec")
    cost.add_argument("--arg", action="append", default=[])
    cost.set_defaults(func=cmd_cost)

    serve = commands.add_parser("serve", help="serve an instance over RPC")
    serve.add_argument("spec")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--arg", action="append", default=[])
    serve.set_defaults(func=cmd_serve)

    options = parser.parse_args(argv)
    return options.func(options)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
