"""On-disk record format for the log-structured store.

Each record is::

    +----------+---------+---------+----------+------------+
    | crc32 (4)| klen (4)| vlen (4)| key bytes| value bytes|
    +----------+---------+---------+----------+------------+

``vlen`` of ``0xFFFFFFFF`` marks a tombstone (deletion).  The CRC covers
the two length fields plus key and value, so a torn or bit-flipped tail
is detected during recovery rather than silently read back.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Tuple

HEADER = struct.Struct("<III")
TOMBSTONE = 0xFFFFFFFF
MAX_KEY = 0xFFFF_FFFE
MAX_VALUE = 0xFFFF_FFFE


class CorruptRecordError(Exception):
    """A record failed its checksum or is structurally impossible."""


def encode(key: bytes, value: Optional[bytes]) -> bytes:
    """Serialize one put (``value`` bytes) or delete (``value=None``)."""
    if len(key) > MAX_KEY:
        raise ValueError("key too large")
    if value is None:
        vlen = TOMBSTONE
        body = key
    else:
        if len(value) > MAX_VALUE:
            raise ValueError("value too large")
        vlen = len(value)
        body = key + value
    lengths = struct.pack("<II", len(key), vlen)
    crc = zlib.crc32(lengths + body) & 0xFFFFFFFF
    return HEADER.pack(crc, len(key), vlen) + body


def decode_at(buf: bytes, offset: int) -> Tuple[bytes, Optional[bytes], int]:
    """Decode the record starting at ``offset``.

    Returns ``(key, value_or_None, next_offset)``.  Raises
    :class:`CorruptRecordError` on a bad checksum and
    :class:`IndexError`-ish truncation as ``CorruptRecordError`` too —
    the caller treats either as "end of valid log".
    """
    end = offset + HEADER.size
    if end > len(buf):
        raise CorruptRecordError("truncated header")
    crc, klen, vlen = HEADER.unpack_from(buf, offset)
    vbytes = 0 if vlen == TOMBSTONE else vlen
    body_end = end + klen + vbytes
    if body_end > len(buf):
        raise CorruptRecordError("truncated body")
    body = buf[end:body_end]
    lengths = struct.pack("<II", klen, vlen)
    if zlib.crc32(lengths + body) & 0xFFFFFFFF != crc:
        raise CorruptRecordError("checksum mismatch")
    key = body[:klen]
    value = None if vlen == TOMBSTONE else body[klen:]
    return key, value, body_end
