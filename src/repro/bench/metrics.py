"""Latency and throughput metrics.

The paper reports transactions/sec, web interactions/sec, average and
95th-percentile latency, and several time-series plots (Figures 16 and
17).  :class:`LatencyRecorder` handles the scalar statistics;
:class:`TimeSeries` buckets samples over time for the plots.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple


class LatencyRecorder:
    """Accumulates latency samples, optionally labelled by operation."""

    def __init__(self):
        self._samples: List[float] = []
        self._by_label: Dict[str, List[float]] = {}

    def record(self, latency: float, label: Optional[str] = None) -> None:
        if latency < 0:
            raise ValueError("latency cannot be negative")
        self._samples.append(latency)
        if label is not None:
            self._by_label.setdefault(label, []).append(latency)

    def merge(self, other: "LatencyRecorder") -> None:
        self._samples.extend(other._samples)
        for label, samples in other._by_label.items():
            self._by_label.setdefault(label, []).extend(samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def labels(self) -> List[str]:
        return sorted(self._by_label)

    def _data(self, label: Optional[str]) -> List[float]:
        if label is None:
            return self._samples
        return self._by_label.get(label, [])

    def mean(self, label: Optional[str] = None) -> float:
        data = self._data(label)
        return sum(data) / len(data) if data else 0.0

    def percentile(self, p: float, label: Optional[str] = None) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        data = sorted(self._data(label))
        if not data:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(data)))
        return data[rank - 1]

    def p95(self, label: Optional[str] = None) -> float:
        return self.percentile(95, label)

    def maximum(self, label: Optional[str] = None) -> float:
        data = self._data(label)
        return max(data) if data else 0.0

    def count_for(self, label: str) -> int:
        return len(self._by_label.get(label, []))


class TimeSeries:
    """Samples bucketed into fixed intervals (for Figures 16 and 17)."""

    def __init__(self, bucket_seconds: float):
        if bucket_seconds <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_seconds = bucket_seconds
        self._buckets: Dict[int, List[float]] = {}

    def record(self, at: float, value: float) -> None:
        self._buckets.setdefault(int(at // self.bucket_seconds), []).append(value)

    def buckets(self) -> List[Tuple[float, List[float]]]:
        """(bucket start time, samples) in time order."""
        return [
            (index * self.bucket_seconds, self._buckets[index])
            for index in sorted(self._buckets)
        ]

    def means(self) -> List[Tuple[float, float]]:
        return [
            (start, sum(samples) / len(samples))
            for start, samples in self.buckets()
        ]

    def counts(self) -> List[Tuple[float, int]]:
        return [(start, len(samples)) for start, samples in self.buckets()]

    def rate(self) -> List[Tuple[float, float]]:
        """Events per second in each bucket (Figure 17's ops/sec)."""
        return [
            (start, len(samples) / self.bucket_seconds)
            for start, samples in self.buckets()
        ]
