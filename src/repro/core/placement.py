"""Heat-driven adaptive placement: act on what the heat tracker measures.

PR 9 landed the measurement half of ROADMAP item 1 — per-object EWMA
heat, a Space-Saving hot set, and tier occupancy timelines.  This module
is the acting half: a placement engine that consumes those summaries and
promotes, demotes, and pre-warms objects across tiers against a
configurable cost-vs-latency objective, the file-popularity-driven
tiering of Herodotou & Kakoulli's "Automating Distributed Tiered Storage
Management" grafted onto Tiera's policy machinery.

The engine is deliberately a *planner + executor* split:

``plan()``
    A pure function of tracker state, tier occupancy, and virtual time.
    Each candidate move is scored greedily::

        score = latency_weight · heat · (lat_src − lat_dst) · 1000
              + cost_weight · (rate_src − rate_dst) · size_gb · 1000
              − move_cost − capacity_pressure

    Admission and eviction deliberately read *different* signals (the
    LRFU/ARC hybrid shape): a key is promoted only once the Space-Saving
    sketch confirms sustained frequency (``hot_min``), so a one-off scan
    read — whose instantaneous EWMA briefly spikes to ``1/window`` —
    never pollutes a fast tier; demotion eligibility instead follows the
    EWMA rate alone, because sketch counts never decay and yesterday's
    hot key must be evictable once its recent rate collapses.  Plans are
    damped with hysteresis (a key moved recently is left alone so hot
    keys don't thrash) and a high-watermark capacity penalty.  An optional
    refinement pass runs a bounded local search over the greedy plan:
    promotions that didn't fit are paired with demoting the coldest
    resident of the target tier when the swap's combined gain is
    positive (the spirit of the Data-in-Motion ``p_hot`` + MILP
    placement, without the solver).

``run_cycle()``
    Executes a plan through the instance's journaled data-path
    primitives, emits ``tiera_placement_*`` metrics, and appends an
    audit record under the ``placement`` category.

Cadence comes from the virtual clock (``schedule_repeating``) when the
engine is enabled through the management API, or from a policy rule's
own timer when composed as the ``adaptive_placement(...)`` spec
response — see :class:`repro.core.responses.AdaptivePlacement`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.simcloud.resources import RequestContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.instance import TieraInstance

#: Objective presets: name -> (latency_weight, cost_weight).  "latency"
#: pays for speed (retains data in fast tiers), "cost" evicts
#: aggressively toward cheap tiers, "balanced" sits between.
OBJECTIVES: Dict[str, Tuple[float, float]] = {
    "balanced": (1.0, 1.0),
    "latency": (4.0, 0.25),
    "cost": (0.25, 4.0),
}

GB = 1024 ** 3

DEFAULT_OBJECTIVE = "balanced"
DEFAULT_INTERVAL = 60.0
DEFAULT_MIN_SCORE = 0.05
DEFAULT_MAX_MOVES = 8
DEFAULT_PREWARM_LIMIT = 2
DEFAULT_HIGH_WATERMARK = 0.90
DEFAULT_REFINE_BUDGET = 16

#: Fixed score charged per move (churn is never free) plus a transfer
#: term per GiB moved, in the same dimensionless "score points" the
#: latency and cost terms are normalized to.
MOVE_COST_BASE = 0.001
MOVE_COST_PER_GB = 4.0

#: Score points per (seconds-saved-per-second); 1000 puts a 1 op/s key
#: crossing a ~3 ms tier gap at ~3 points.
LATENCY_SCALE = 1000.0

#: Score points per $/month of storage-cost delta on the moved bytes.
COST_SCALE = 1000.0

#: Penalty at 100% projected fill of the destination tier; scales
#: linearly from zero at the high watermark.
PRESSURE_SCALE = 4.0

#: Payload size used to rank tiers fast -> slow (the request-overhead
#: term dominates at this size for every built-in latency model).
REFERENCE_SIZE = 4096


def expected_latency(model, nbytes: int) -> float:
    """Deterministic expected service time of a latency model.

    Planning must not consume randomness (the plan is a pure function
    of tracker state), so instead of sampling we walk the model shape:
    size-dependent models recurse into their base and add the transfer
    term, lognormal models contribute their median, fixed models their
    constant.
    """
    base = getattr(model, "base", None)
    if base is not None:
        bps = getattr(model, "bytes_per_second", 0.0)
        transfer = nbytes / bps if bps else 0.0
        return expected_latency(base, nbytes) + transfer
    median = getattr(model, "median", None)
    if median is not None:
        return float(median)
    seconds = getattr(model, "seconds", None)
    if seconds is not None:
        return float(seconds)
    return 0.0


class PlacementEngine:
    """Greedy, hysteresis-damped promote/demote/pre-warm planner."""

    def __init__(
        self,
        instance: "TieraInstance",
        *,
        objective: str = DEFAULT_OBJECTIVE,
        interval: float = DEFAULT_INTERVAL,
        hysteresis: Optional[float] = None,
        min_score: float = DEFAULT_MIN_SCORE,
        max_moves: int = DEFAULT_MAX_MOVES,
        prewarm_limit: int = DEFAULT_PREWARM_LIMIT,
        high_watermark: float = DEFAULT_HIGH_WATERMARK,
        refine: bool = True,
        start_timer: bool = True,
    ):
        self.instance = instance
        self.clock = instance.clock
        self.tracker = instance.obs.heat
        self.objective = DEFAULT_OBJECTIVE
        self.interval = DEFAULT_INTERVAL
        self.hysteresis = 2 * DEFAULT_INTERVAL
        self.min_score = DEFAULT_MIN_SCORE
        self.max_moves = DEFAULT_MAX_MOVES
        self.prewarm_limit = DEFAULT_PREWARM_LIMIT
        self.high_watermark = DEFAULT_HIGH_WATERMARK
        self.refine = True
        self._hysteresis_explicit = False
        self._timer = None
        self._last_moved: Dict[str, float] = {}
        self._last_cycle: Optional[Dict[str, object]] = None
        self.cycles = 0
        self.moves = 0
        self.bytes_moved = 0
        self._install_metrics()
        self.reconfigure(
            objective=objective,
            interval=interval,
            hysteresis=hysteresis,
            min_score=min_score,
            max_moves=max_moves,
            prewarm_limit=prewarm_limit,
            high_watermark=high_watermark,
            refine=refine,
        )
        if start_timer:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def reconfigure(self, **options) -> "PlacementEngine":
        """Apply config in place (idempotent; validates before mutating)."""
        known = {
            "objective", "interval", "hysteresis", "min_score",
            "max_moves", "prewarm_limit", "high_watermark", "refine",
        }
        unknown = set(options) - known
        if unknown:
            raise TypeError(
                f"unknown placement option(s): {', '.join(sorted(unknown))}"
            )
        objective = options.get("objective")
        if objective is not None and objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; expected one of "
                f"{', '.join(sorted(OBJECTIVES))}"
            )
        interval = options.get("interval")
        if interval is not None:
            interval = float(interval)
            if interval <= 0:
                raise ValueError("interval must be positive")
        hysteresis = options.get("hysteresis")
        if hysteresis is not None:
            hysteresis = float(hysteresis)
            if hysteresis < 0:
                raise ValueError("hysteresis cannot be negative")
        high_watermark = options.get("high_watermark")
        if high_watermark is not None:
            high_watermark = float(high_watermark)
            if not 0.0 < high_watermark <= 1.0:
                raise ValueError("high_watermark must be in (0, 1]")
        for count_opt in ("max_moves", "prewarm_limit"):
            if options.get(count_opt) is not None and int(options[count_opt]) < 0:
                raise ValueError(f"{count_opt} cannot be negative")

        if objective is not None:
            self.objective = objective
        if interval is not None:
            reschedule = self._timer is not None and interval != self.interval
            self.interval = interval
            if not self._hysteresis_explicit:
                self.hysteresis = 2 * interval
            if reschedule:
                self.stop()
                self.start()
        if hysteresis is not None:
            self.hysteresis = hysteresis
            self._hysteresis_explicit = True
        if options.get("min_score") is not None:
            self.min_score = float(options["min_score"])
        if options.get("max_moves") is not None:
            self.max_moves = int(options["max_moves"])
        if options.get("prewarm_limit") is not None:
            self.prewarm_limit = int(options["prewarm_limit"])
        if high_watermark is not None:
            self.high_watermark = high_watermark
        if options.get("refine") is not None:
            self.refine = bool(options["refine"])
        return self

    def start(self) -> None:
        """Begin the virtual-time cycle cadence (idempotent)."""
        if self._timer is None:
            self._timer = self.clock.schedule_repeating(
                self.interval, self._tick
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def detach(self) -> None:
        """Instance shutdown hook: cancel the timer."""
        self.stop()

    @property
    def running(self) -> bool:
        return self._timer is not None

    def _install_metrics(self) -> None:
        m = self.instance.obs.metrics
        self._m_cycles = m.counter(
            "tiera_placement_cycles_total",
            "Adaptive placement cycles executed",
        )
        self._m_moves = m.counter(
            "tiera_placement_moves_total",
            "Objects moved by the placement engine, by action",
        )
        self._m_bytes = m.counter(
            "tiera_placement_bytes_moved_total",
            "Payload bytes moved by the placement engine",
        )
        self._m_skipped = m.counter(
            "tiera_placement_skipped_total",
            "Candidate moves the planner rejected, by reason",
        )
        self._m_plan_size = m.gauge(
            "tiera_placement_plan_size",
            "Decisions in the most recent placement plan",
        )

    def _tick(self) -> None:
        """Timer fire: one cycle on a fresh background context."""
        ctx = RequestContext(self.clock)
        try:
            self.run_cycle(ctx, origin="timer")
        except Exception as exc:  # noqa: BLE001 - background isolation
            control = getattr(self.instance, "control", None)
            if control is not None:
                control._note_background_error("placement", exc, ctx.time)

    # -- scoring -------------------------------------------------------------

    def weights(self) -> Tuple[float, float]:
        return OBJECTIVES[self.objective]

    def _tier_order(self) -> List[str]:
        """Tier names fastest -> slowest by expected read latency."""
        ranked = []
        for index, tier in enumerate(self.instance.tiers):
            lat = expected_latency(tier.service.latency, REFERENCE_SIZE)
            ranked.append((lat, index, tier.name))
        ranked.sort()
        return [name for _, _, name in ranked]

    def _read_latency(self, tier_name: str, nbytes: int) -> float:
        tier = self.instance.tiers.get(tier_name)
        return expected_latency(tier.service.latency, nbytes)

    def _storage_rate(self, tier_name: str) -> float:
        """$/GB-month of the tier's product (0.0 if unpriced)."""
        tier = self.instance.tiers.get(tier_name)
        book = getattr(self.instance, "price_book", None)
        if book is None:
            return 0.0
        try:
            return book.storage_rate(tier.kind)
        except KeyError:
            return 0.0

    def score_move(
        self,
        heat: float,
        src: str,
        dst: str,
        nbytes: int,
        pressure: float = 0.0,
    ) -> float:
        """Greedy benefit of serving ``nbytes`` from ``dst`` instead of
        ``src`` for a key accessed ``heat`` times per virtual second."""
        lw, cw = self.weights()
        size_gb = max(nbytes, 1) / GB
        latency_gain = heat * (
            self._read_latency(src, nbytes) - self._read_latency(dst, nbytes)
        )
        cost_gain = (
            self._storage_rate(src) - self._storage_rate(dst)
        ) * size_gb
        move_cost = MOVE_COST_BASE + MOVE_COST_PER_GB * size_gb
        return (
            lw * latency_gain * LATENCY_SCALE
            + cw * cost_gain * COST_SCALE
            - move_cost
            - pressure
        )

    def _pressure(self, projected: Dict[str, int], dst: str, nbytes: int) -> float:
        """Capacity-pressure penalty for adding ``nbytes`` to ``dst``."""
        tier = self.instance.tiers.get(dst)
        if tier.capacity in (None, 0):
            return 0.0
        fill_after = (projected[dst] + nbytes) / tier.capacity
        if fill_after <= self.high_watermark:
            return 0.0
        over = (fill_after - self.high_watermark) / (1.0 - self.high_watermark + 1e-9)
        return PRESSURE_SCALE * min(over, 1.0)

    # -- planning ------------------------------------------------------------

    def plan(self, now: Optional[float] = None) -> Dict[str, object]:
        """Score candidates and emit a JSON-able decision list.

        Pure with respect to instance state: no data moves, no RNG, no
        metrics — calling ``plan()`` twice yields the identical plan.
        """
        if now is None:
            now = self.clock.now()
        order = self._tier_order()
        rank = {name: i for i, name in enumerate(order)}
        projected = {
            tier.name: tier.used for tier in self.instance.tiers
        }
        decisions: List[Dict[str, object]] = []
        skipped: List[Dict[str, object]] = []
        blocked: List[Dict[str, object]] = []
        planned_keys = set()
        considered = 0
        moves_left = self.max_moves
        prewarms_left = self.prewarm_limit

        def skip(key: str, reason: str) -> None:
            skipped.append({"key": key, "reason": reason})

        # Promotions / pre-warms: hottest first, straight off the sketch.
        # hot_keys() is hot_min-gated (guaranteed count, error deducted),
        # so a scan one-off never becomes a promotion candidate no
        # matter how high its instantaneous EWMA spikes.
        for key in self.tracker.hot_keys():
            if moves_left <= 0:
                break
            considered += 1
            if not self.instance.has_object(key):
                skip(key, "missing")
                continue
            meta = self.instance.meta(key)
            current = [t for t in meta.locations if t in rank]
            if not current:
                skip(key, "untiered")
                continue
            src = min(current, key=lambda t: rank[t])
            dst = next(
                (t for t in order if rank[t] < rank[src]
                 and t not in meta.locations),
                None,
            )
            if dst is None:
                continue  # already in the fastest tier that exists
            if now - self._last_moved.get(key, -1e18) < self.hysteresis:
                skip(key, "hysteresis")
                continue
            heat = self.tracker.heat_rate(key, now)
            last_access = self.tracker.last_access(key)
            tier = self.instance.tiers.get(dst)
            if tier.capacity is not None and (
                projected[dst] + meta.size > tier.capacity
            ):
                blocked.append({
                    "key": key, "src": src, "dst": dst,
                    "size": meta.size, "heat": heat,
                })
                skip(key, "capacity")
                continue
            pressure = self._pressure(projected, dst, meta.size)
            score = self.score_move(heat, src, dst, meta.size, pressure)
            if score < self.min_score:
                skip(key, "score")
                continue
            recent = (now - last_access) <= self.interval
            action = "promote" if recent else "prewarm"
            if action == "prewarm":
                if prewarms_left <= 0:
                    skip(key, "prewarm-limit")
                    continue
                prewarms_left -= 1
            decisions.append({
                "key": key,
                "action": action,
                "from": src,
                "to": dst,
                "size": meta.size,
                "heat": round(heat, 6),
                "score": round(score, 4),
                "reason": "hot" if action == "promote" else "predicted-hot",
            })
            planned_keys.add(key)
            projected[dst] += meta.size
            moves_left -= 1

        # Demotions: coldest residents of the fast tiers, coldest first.
        demotion_candidates = self._demotion_candidates(order, rank, now)
        for heat, last_access, key, src, meta in demotion_candidates:
            if moves_left <= 0:
                break
            considered += 1
            if key in planned_keys:
                continue
            if now - self._last_moved.get(key, -1e18) < self.hysteresis:
                skip(key, "hysteresis")
                continue
            dst = self._demotion_target(meta, src, order, rank)
            if dst is None:
                skip(key, "no-slower-tier")
                continue
            needs_copy = dst not in meta.locations
            pressure = (
                self._pressure(projected, dst, meta.size) if needs_copy else 0.0
            )
            score = self.score_move(heat, src, dst, meta.size, pressure)
            if score < self.min_score:
                # Candidates are coldest-first: a warmer key demoting
                # across the same tier pair scores strictly lower, so
                # record one representative skip and stop scanning.
                skip(key, "score")
                break
            decisions.append({
                "key": key,
                "action": "demote",
                "from": src,
                "to": dst,
                "size": meta.size,
                "heat": round(heat, 6),
                "score": round(score, 4),
                "reason": "cold",
            })
            planned_keys.add(key)
            projected[src] -= meta.size
            if needs_copy:
                projected[dst] += meta.size
            moves_left -= 1

        if self.refine and blocked:
            self._refine(
                blocked, decisions, skipped, planned_keys,
                projected, order, rank, now,
            )

        return {
            "enabled": True,
            "time": round(now, 6),
            "objective": self.objective,
            "weights": {
                "latency": self.weights()[0], "cost": self.weights()[1],
            },
            "interval": self.interval,
            "hysteresis": self.hysteresis,
            "tier_order": order,
            "considered": considered,
            "decisions": decisions,
            "skipped": skipped,
        }

    def _demotion_candidates(self, order, rank, now):
        """Residents of every tier that has a slower sibling, coldest
        first; deterministic (heat, last_access, key) order.  Sketch
        membership is deliberately ignored here — Space-Saving counts
        never decay, so a key hot last epoch but idle now must still be
        evictable; the EWMA-driven score protects currently-hot keys."""
        out = []
        slowest = order[-1] if order else None
        for meta in self.instance.iter_meta():
            heat = self.tracker.heat_rate(meta.key, now)
            last_access = self.tracker.last_access(meta.key)
            for src in meta.locations:
                if src not in rank or src == slowest:
                    continue
                out.append((heat, last_access, meta.key, src, meta))
        out.sort(key=lambda item: (item[0], item[1], item[2], item[3]))
        return out

    @staticmethod
    def _demotion_target(meta, src, order, rank) -> Optional[str]:
        """Where reads land after dropping ``src``: the fastest slower
        copy if one exists, else the next slower tier to copy into."""
        slower_copies = [
            t for t in meta.locations if t in rank and rank[t] > rank[src]
        ]
        if slower_copies:
            return min(slower_copies, key=lambda t: rank[t])
        for name in order[rank[src] + 1:]:
            return name
        return None

    def _refine(
        self, blocked, decisions, skipped, planned_keys,
        projected, order, rank, now,
    ) -> None:
        """Bounded local search: pair capacity-blocked promotions with
        demoting the coldest resident of the target tier when the swap's
        combined score clears the threshold."""
        budget = DEFAULT_REFINE_BUDGET
        candidates = self._demotion_candidates(order, rank, now)
        for promo in blocked[:budget]:
            dst = promo["dst"]
            tier = self.instance.tiers.get(dst)
            victim = next(
                (
                    c for c in candidates
                    if c[3] == dst and c[2] not in planned_keys
                    and c[2] != promo["key"]
                ),
                None,
            )
            if victim is None:
                continue
            v_heat, _, v_key, v_src, v_meta = victim
            v_dst = self._demotion_target(v_meta, v_src, order, rank)
            if v_dst is None:
                continue
            freed = projected[dst] - v_meta.size
            if tier.capacity is not None and freed + promo["size"] > tier.capacity:
                continue  # one eviction is not enough; stay greedy
            demote_score = self.score_move(v_heat, v_src, v_dst, v_meta.size)
            promote_score = self.score_move(
                promo["heat"], promo["src"], dst, promo["size"]
            )
            if promote_score + demote_score < self.min_score:
                continue
            skipped[:] = [
                s for s in skipped
                if not (s["key"] == promo["key"] and s["reason"] == "capacity")
            ]
            decisions.append({
                "key": v_key,
                "action": "demote",
                "from": v_src,
                "to": v_dst,
                "size": v_meta.size,
                "heat": round(v_heat, 6),
                "score": round(demote_score, 4),
                "reason": "refine-swap",
            })
            decisions.append({
                "key": promo["key"],
                "action": "promote",
                "from": promo["src"],
                "to": dst,
                "size": promo["size"],
                "heat": round(promo["heat"], 6),
                "score": round(promote_score, 4),
                "reason": "refine-swap",
            })
            planned_keys.add(v_key)
            planned_keys.add(promo["key"])
            projected[dst] = freed + promo["size"]
            if v_dst not in v_meta.locations:
                projected[v_dst] += v_meta.size

    # -- execution -----------------------------------------------------------

    def run_cycle(
        self, ctx: RequestContext, origin: str = "manual"
    ) -> Dict[str, object]:
        """Plan, then execute each decision through the journaled data
        path; returns the plan annotated with per-decision outcomes."""
        now = self.clock.now()
        plan = self.plan(now=now)
        applied = 0
        bytes_moved = 0
        errors = 0
        tiers_touched = set()
        for decision in plan["decisions"]:
            try:
                self._apply(decision, ctx)
            except Exception as exc:  # noqa: BLE001 - keep the cycle going
                decision["applied"] = False
                decision["error"] = f"{type(exc).__name__}: {exc}"
                errors += 1
                self._m_skipped.inc(reason="error")
                continue
            decision["applied"] = True
            self._last_moved[decision["key"]] = now
            applied += 1
            bytes_moved += decision["size"]
            tiers_touched.add(decision["from"])
            tiers_touched.add(decision["to"])
            self._m_moves.inc(action=decision["action"])
            self._m_bytes.inc(decision["size"])
        for entry in plan["skipped"]:
            self._m_skipped.inc(reason=entry["reason"])
        self.cycles += 1
        self.moves += applied
        self.bytes_moved += bytes_moved
        self._m_cycles.inc()
        self._m_plan_size.set(len(plan["decisions"]))
        self._last_cycle = {
            "time": plan["time"],
            "origin": origin,
            "decisions": len(plan["decisions"]),
            "applied": applied,
            "errors": errors,
            "bytes_moved": bytes_moved,
            "skipped": len(plan["skipped"]),
        }
        self._audit(plan, origin, applied, bytes_moved, tiers_touched, ctx)
        return plan

    def _apply(self, decision: Dict[str, object], ctx: RequestContext) -> None:
        key = decision["key"]
        src = decision["from"]
        dst = decision["to"]
        if decision["action"] in ("promote", "prewarm"):
            data = self.instance.read_raw(key, ctx, prefer=src)
            self.instance.write_to_tier(key, data, dst, ctx)
            return
        # demote: drop the fast copy, first materializing a slower one
        # if the object lives nowhere below the source tier.
        meta = self.instance.meta(key)
        if dst not in meta.locations:
            data = self.instance.read_raw(key, ctx, prefer=src)
            self.instance.write_to_tier(key, data, dst, ctx)
        self.instance.remove_from_tier(key, src, ctx)

    def _audit(
        self, plan, origin, applied, bytes_moved, tiers_touched, ctx
    ) -> None:
        audit = getattr(self.instance.obs, "audit", None)
        if audit is None:
            return
        from repro.obs.audit import AuditRecord

        actions: Dict[str, int] = {}
        for decision in plan["decisions"]:
            if decision.get("applied"):
                actions[decision["action"]] = (
                    actions.get(decision["action"], 0) + 1
                )
        audit.append(AuditRecord(
            time=plan["time"],
            category="placement",
            name=f"adaptive-{self.objective}",
            origin=origin,
            foreground=False,
            responses=applied,
            tiers_touched=tuple(sorted(t for t in tiers_touched if t)),
            objects_moved=applied,
            duration=round(ctx.elapsed, 9),
            detail={
                "objective": self.objective,
                "decisions": len(plan["decisions"]),
                "applied": applied,
                "actions": {a: n for a, n in sorted(actions.items())},
                "bytes_moved": bytes_moved,
                "skipped": len(plan["skipped"]),
            },
        ))

    # -- introspection -------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """JSON-able engine state for health()/RPC/CLI."""
        return {
            "enabled": True,
            "running": self.running,
            "objective": self.objective,
            "weights": {
                "latency": self.weights()[0], "cost": self.weights()[1],
            },
            "interval": self.interval,
            "hysteresis": self.hysteresis,
            "min_score": self.min_score,
            "max_moves": self.max_moves,
            "prewarm_limit": self.prewarm_limit,
            "high_watermark": self.high_watermark,
            "refine": self.refine,
            "cycles": self.cycles,
            "moves": self.moves,
            "bytes_moved": self.bytes_moved,
            "last_cycle": self._last_cycle,
        }
