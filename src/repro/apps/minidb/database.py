"""The Database facade: catalog, engine, journal, checkpointing.

One :class:`Database` is one deployment — point it at a
:class:`~repro.fs.filesystem.TieraFileSystem` backed by whichever Tiera
instance (or bare-EBS instance) the experiment calls for, and it lays
out ``/<name>/catalog.json``, one ``.tbl`` file per table, and
``journal.log``.  Checkpoints fire automatically once the journal
outgrows ``checkpoint_bytes`` — the background write bursts real
databases exhibit.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps.minidb.engine import MemoryEngine, TransactionalEngine
from repro.apps.minidb.errors import DatabaseError, NoSuchTableError
from repro.apps.minidb.journal import Journal
from repro.apps.minidb.records import Column, Schema
from repro.apps.minidb.table import Table
from repro.fs.filesystem import TieraFileSystem
from repro.simcloud.resources import RequestContext

DEFAULT_CHECKPOINT_BYTES = 4 * 1024 * 1024


class Database:
    """A named database over one file system."""

    def __init__(
        self,
        fs: Optional[TieraFileSystem],
        name: str = "minidb",
        engine: str = "transactional",
        buffer_pool_pages: int = 256,
        journal_readonly: bool = True,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
    ):
        if engine not in ("transactional", "memory"):
            raise ValueError(f"unknown engine {engine!r}")
        if fs is None and engine != "memory":
            raise ValueError("the transactional engine needs a file system")
        self.fs = fs
        self.name = name
        self.engine_kind = engine
        self.buffer_pool_pages = buffer_pool_pages
        self.checkpoint_bytes = checkpoint_bytes
        self.checkpoints = 0
        self._catalog_path = f"/{name}/catalog.json"
        self._schemas: Dict[str, Schema] = {}
        if engine == "memory":
            self.memory_engine: Optional[MemoryEngine] = MemoryEngine()
            self.engine: Optional[TransactionalEngine] = None
            self.journal: Optional[Journal] = None
        else:
            self.memory_engine = None
            self.journal = Journal(fs, f"/{name}/journal.log")
            self.engine = TransactionalEngine(
                self.journal, journal_readonly=journal_readonly
            )
            self._load_catalog()
            if self._schemas:
                self.engine.recover()

    # -- catalog -----------------------------------------------------------

    def _load_catalog(self) -> None:
        if not self.fs.exists(self._catalog_path):
            return
        with self.fs.open(self._catalog_path, "r") as handle:
            doc = json.loads(handle.read().decode("utf-8"))
        for table_name, columns in doc.items():
            schema = Schema([Column(n, t) for n, t in columns])
            self._schemas[table_name] = schema
            self.engine.tables[table_name] = Table(
                self.fs,
                self._table_path(table_name),
                schema,
                buffer_pool_pages=self.buffer_pool_pages,
            )

    def _save_catalog(self, ctx: Optional[RequestContext] = None) -> None:
        doc = {
            name: [[c.name, c.type] for c in schema.columns]
            for name, schema in self._schemas.items()
        }
        with self.fs.open(self._catalog_path, "w") as handle:
            handle.write(json.dumps(doc, sort_keys=True).encode("utf-8"), ctx=ctx)

    def _table_path(self, table: str) -> str:
        return f"/{self.name}/{table}.tbl"

    # -- DDL ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema,
        ctx: Optional[RequestContext] = None,
    ) -> None:
        if name in self._schemas or (
            self.memory_engine is not None and name in self.memory_engine.data
        ):
            raise DatabaseError(f"table {name!r} already exists")
        if self.memory_engine is not None:
            self.memory_engine.create_table(name, schema)
            return
        self._schemas[name] = schema
        self.engine.tables[name] = Table(
            self.fs,
            self._table_path(name),
            schema,
            buffer_pool_pages=self.buffer_pool_pages,
            create=True,
            ctx=ctx,
        )
        self._save_catalog(ctx)

    def schema(self, table: str) -> Schema:
        if self.memory_engine is not None:
            try:
                return self.memory_engine.schemas[table]
            except KeyError:
                raise NoSuchTableError(table) from None
        try:
            return self._schemas[table]
        except KeyError:
            raise NoSuchTableError(table) from None

    def tables(self) -> List[str]:
        if self.memory_engine is not None:
            return sorted(self.memory_engine.data)
        return sorted(self._schemas)

    # -- transactions ------------------------------------------------------------

    def begin(self):
        if self.memory_engine is not None:
            return self.memory_engine.begin()
        return self.engine.begin()

    def transaction(self):
        """Context-manager alias for :meth:`begin`."""
        return self.begin()

    # -- autocommit conveniences -----------------------------------------------------

    def get(
        self, table: str, key: int, ctx: Optional[RequestContext] = None
    ) -> Optional[Tuple[Any, ...]]:
        txn = self.begin()
        row = txn.get(table, key, ctx=ctx)
        txn.commit(ctx=ctx)
        self._maybe_checkpoint(ctx)
        return row

    def insert(
        self, table: str, row: Sequence[Any], ctx: Optional[RequestContext] = None
    ) -> None:
        txn = self.begin()
        txn.insert(table, row, ctx=ctx)
        txn.commit(ctx=ctx)
        self._maybe_checkpoint(ctx)

    def update(
        self,
        table: str,
        key: int,
        row: Sequence[Any],
        ctx: Optional[RequestContext] = None,
    ) -> None:
        txn = self.begin()
        txn.update(table, key, row, ctx=ctx)
        txn.commit(ctx=ctx)
        self._maybe_checkpoint(ctx)

    def delete(
        self, table: str, key: int, ctx: Optional[RequestContext] = None
    ) -> None:
        txn = self.begin()
        txn.delete(table, key, ctx=ctx)
        txn.commit(ctx=ctx)
        self._maybe_checkpoint(ctx)

    # -- durability ---------------------------------------------------------------------

    def _maybe_checkpoint(self, ctx: Optional[RequestContext]) -> None:
        if self.journal is None:
            return
        if self.journal.bytes_since_checkpoint >= self.checkpoint_bytes:
            # The flusher thread does checkpoints in the background: the
            # page writes contend for the device but do not land on the
            # committing client's latency.
            background = ctx.fork() if ctx is not None else None
            self.checkpoint(background)

    def maybe_checkpoint(self, ctx: Optional[RequestContext] = None) -> None:
        """Public hook for workload drivers running raw transactions."""
        self._maybe_checkpoint(ctx)

    def checkpoint(self, ctx: Optional[RequestContext] = None) -> None:
        """Flush all dirty pages, then truncate the journal."""
        if self.engine is None:
            return
        for table in self.engine.tables.values():
            table.checkpoint(ctx=ctx)
        self.journal.checkpoint(ctx=ctx)
        self.checkpoints += 1

    def close(self, ctx: Optional[RequestContext] = None) -> None:
        if self.engine is not None:
            for table in self.engine.tables.values():
                table.close(ctx=ctx)
            self.journal.close(ctx=ctx)

    # -- statistics ---------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        if self.memory_engine is not None:
            return {
                "engine": "memory",
                "commits": self.memory_engine.commits,
                "tables": {
                    name: len(rows) for name, rows in self.memory_engine.data.items()
                },
            }
        out: Dict[str, Any] = {
            "engine": "transactional",
            "commits": self.engine.commits,
            "rollbacks": self.engine.rollbacks,
            "checkpoints": self.checkpoints,
            "tables": {},
        }
        for name, table in self.engine.tables.items():
            out["tables"][name] = {
                "rows": table.row_count,
                "pages": table.pager.page_count,
                "pool_hit_rate": table.pool.hit_rate,
            }
        return out
