"""Figure 8: MySQL read-write throughput and 95th-percentile latency.

Same sweep as Figure 7 with sysbench's read-write transaction mix.

Paper result: MemcachedReplicated +125 % throughput over EBS;
MemcachedEBS resembles bare EBS because every write goes through to
the EBS tier (the write bottleneck); latencies an order of magnitude
apart between the memory-backed and EBS-backed deployments.
"""

from __future__ import annotations

from repro.bench.report import TIER_BREAKDOWN_HEADERS, format_table

from benchmarks.bench_fig07_mysql_readonly import run_sysbench_sweep


def test_fig08_mysql_readwrite(benchmark, emit):
    table = {}

    def experiment():
        table["rows"], table["breakdown"] = run_sysbench_sweep(read_only=False)

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Figure 8 — sysbench read-write, 8 threads (TPS and p95 latency)",
        ["deployment", "% hot", "TPS", "p95 (ms)"],
        table["rows"],
        note=(
            "Paper: MemcachedReplicated +125% TPS over EBS; MemcachedEBS "
            "≈ EBS (EBS writes are the bottleneck)."
        ),
    )
    text += "\n\n" + format_table(
        "Figure 8 — per-tier activity during the measured window",
        list(TIER_BREAKDOWN_HEADERS),
        table["breakdown"],
        note="From the tiera_* metrics registry: per-service op counts, "
             "simulated seconds charged, and each tier's share of GETs.",
    )
    emit("fig08_mysql_readwrite", text)
    by = {(r[0], r[1]): r[2] for r in table["rows"]}
    assert by[("Tiera MemcachedReplicated", "1%")] > 1.7 * by[("MySQL On EBS", "1%")]
    # MemcachedEBS within ~35% of bare EBS — "nearly equal" per the paper.
    ratio = by[("Tiera MemcachedEBS", "1%")] / by[("MySQL On EBS", "1%")]
    assert 0.65 < ratio < 1.35
