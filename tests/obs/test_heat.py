"""Workload heat telemetry: sketch, tracker, report, merge, spec hooks."""

import json

import pytest

from repro.core.conditions import AttrRef, EvalScope, HeatHot
from repro.core.errors import PolicyError
from repro.core.server import TieraServer
from repro.obs.heat import (
    HeatTracker,
    SpaceSavingSketch,
    estimate_skew,
    merge_summaries,
    render_report,
    size_class,
)
from repro.obs.registry import MetricsRegistry
from repro.spec import compile_spec
from tests.core.conftest import build_instance


class TestSpaceSavingSketch:
    def test_exact_counts_under_capacity(self):
        sketch = SpaceSavingSketch(capacity=8)
        for key in ["a", "b", "a", "c", "a", "b"]:
            sketch.observe(key)
        assert sketch.count("a") == 3
        assert sketch.count("b") == 2
        assert sketch.error("a") == 0
        assert sketch.top() == [("a", 3, 0), ("b", 2, 0), ("c", 1, 0)]

    def test_eviction_inherits_min_count_as_error(self):
        sketch = SpaceSavingSketch(capacity=2)
        sketch.observe("a")
        sketch.observe("a")
        sketch.observe("b")
        sketch.observe("c")  # evicts b (count 1): c enters at [2, 1]
        assert "b" not in sketch
        assert sketch.count("c") == 2
        assert sketch.error("c") == 1
        assert len(sketch) == 2

    def test_eviction_tie_breaks_on_lexicographic_key(self):
        sketch = SpaceSavingSketch(capacity=2)
        sketch.observe("b")
        sketch.observe("a")  # both at count 1: "a" is the min victim
        sketch.observe("z")
        assert "a" not in sketch
        assert "b" in sketch and "z" in sketch

    def test_error_bound_brackets_true_count(self):
        sketch = SpaceSavingSketch(capacity=4)
        stream = (["hot"] * 50) + [f"cold{i}" for i in range(40)]
        true = {"hot": 50}
        for key in stream:
            sketch.observe(key)
        for key, count, error in sketch.top():
            truth = true.get(key, 1)
            assert count - error <= truth <= count

    def test_same_stream_yields_identical_sketch(self):
        stream = [f"k{i % 7}" for i in range(100)] + ["x", "y", "z"] * 5
        a, b = SpaceSavingSketch(4), SpaceSavingSketch(4)
        for key in stream:
            a.observe(key)
            b.observe(key)
        assert a.top() == b.top()
        assert a.to_dict() == b.to_dict()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(capacity=0)


class TestEstimateSkew:
    def test_zipfian_profile_recovers_exponent(self):
        counts = [round(1000 / rank) for rank in range(1, 21)]
        assert estimate_skew(counts) == pytest.approx(1.0, abs=0.05)

    def test_flat_profile_is_zero(self):
        assert estimate_skew([10, 10, 10, 10]) == 0.0

    def test_too_short_profile_is_zero(self):
        assert estimate_skew([]) == 0.0
        assert estimate_skew([5]) == 0.0


class TestSizeClass:
    def test_classes(self):
        assert size_class(None) == "?"
        assert size_class(100) == "<1K"
        assert size_class(4096) == "4K-16K"
        assert size_class(10 * 1024 * 1024) == ">1M"


def make_tracker(**config):
    tracker = HeatTracker(MetricsRegistry())
    tracker.enable(**config)
    return tracker


class TestHeatTracker:
    def test_disabled_tracker_is_inert(self):
        tracker = HeatTracker(MetricsRegistry())
        tracker.record("get", "k", size=10, at=1.0)
        assert tracker.summary() == {"enabled": False}
        assert tracker.is_hot("k") is False
        assert tracker.hot_keys() == []

    def test_counts_reads_writes_deletes(self):
        tracker = make_tracker()
        tracker.record("put", "k", size=100, at=0.0)
        tracker.record("get", "k", size=100, at=1.0)
        tracker.record("get", "k", size=100, at=2.0)
        tracker.record("delete", "k", at=3.0)
        stats = tracker.global_stats()
        assert stats["accesses"] == 4
        assert stats["reads"] == 2
        assert stats["writes"] == 2  # puts + deletes
        assert stats["read_fraction"] == 0.5

    def test_ewma_rate_grows_with_repeated_access(self):
        tracker = make_tracker(windows=[60.0])
        for t in range(5):
            tracker.record("get", "k", at=float(t))
        summary = tracker.summary()
        [entry] = summary["hot"]
        rate_after_5 = entry["rates"]["60s"]
        tracker.record("get", "k", at=5.0)
        [entry] = tracker.summary()["hot"]
        assert entry["rates"]["60s"] > rate_after_5

    def test_heat_rate_decays_at_read_time(self):
        # Stored rates only update on access; an idle key's rate must
        # still read as decayed so eviction logic sees it going cold.
        tracker = make_tracker(windows=[10.0])
        for t in range(5):
            tracker.record("get", "k", at=float(t))
        live = tracker.heat_rate("k")
        assert tracker.heat_rate("k", now=4.0) == live  # at last access
        later = tracker.heat_rate("k", now=34.0)        # 3 windows idle
        assert 0 < later < live / 10
        assert tracker.heat_rate("missing", now=34.0) == 0.0

    def test_object_table_is_lru_bounded(self):
        tracker = make_tracker(max_objects=3, hot_min=1)
        for i in range(6):
            tracker.record("get", f"k{i}", at=float(i))
        assert tracker.global_stats()["tracked"] == 3
        # Oldest entries fell off; the sketch still remembers them.
        summary = tracker.summary()
        tracked = {
            h["key"] for h in summary["hot"] if "reads" in h
        }
        assert tracked <= {"k3", "k4", "k5"}

    def test_hot_requires_guaranteed_count(self):
        tracker = make_tracker(hot_min=4)
        for t in range(3):
            tracker.record("get", "warm", at=float(t))
        assert not tracker.is_hot("warm")
        tracker.record("get", "warm", at=3.0)
        assert tracker.is_hot("warm")
        assert tracker.hot_keys() == ["warm"]

    def test_timeline_samples_on_interval(self):
        tracker = make_tracker(sample_interval=10.0)
        tracker.occupancy_source = lambda: [("tier1", 50, 100)]
        tracker.record("get", "k", at=0.0)   # first record always samples
        assert len(tracker.timeline) == 1
        tracker.record("get", "k", at=5.0)   # inside the interval: no sample
        assert len(tracker.timeline) == 1
        tracker.record("get", "k", at=10.0)  # boundary crossed
        assert len(tracker.timeline) == 2
        sample = tracker.timeline[-1]
        assert sample["tiers"]["tier1"]["utilization"] == 0.5

    def test_churn_tracks_hot_set_turnover(self):
        tracker = make_tracker(hot_min=2, sample_interval=5.0)
        for t in range(4):
            tracker.record("get", "a", at=float(t))
        tracker.sample(4.0)
        for t in range(4, 10):
            tracker.record("get", "b", at=float(t))
        tracker.sample(10.0)
        assert tracker.churn == 0.0  # {a} ⊂ {a, b}: nothing left the set
        tracker._sketch = SpaceSavingSketch(tracker.top_k)
        for t in range(10, 14):
            tracker.record("get", "c", at=float(t))
        tracker.sample(14.0)
        assert tracker.churn == 1.0  # a and b both gone

    def test_summary_round_trips_as_json(self):
        tracker = make_tracker()
        tracker.occupancy_source = lambda: [("tier1", 10, 100)]
        for t in range(8):
            tracker.record("put" if t % 2 else "get", f"k{t % 3}",
                           size=512, at=float(t))
        summary = tracker.summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["enabled"] is True
        assert summary["accesses"]["total"] == 8
        assert summary["hot_keys"] == [h["key"] for h in summary["hot"]]

    def test_metric_families_register_and_collect(self):
        registry = MetricsRegistry()
        tracker = HeatTracker(registry)
        tracker.enable(hot_min=1)
        for t in range(5):
            tracker.record("get", "k", size=64, at=float(t))
        snap = registry.snapshot()
        families = snap["metrics"]
        assert families["tiera_heat_accesses_total"]["samples"] == {
            "op=get": 5.0
        }
        assert families["tiera_heat_tracked_objects"]["samples"] == {"": 1.0}
        assert families["tiera_heat_hot_count"]["samples"] == {"key=k": 5.0}

    def test_enable_is_idempotent_and_reconfigures(self):
        tracker = make_tracker(top_k=4)
        tracker.record("get", "k", at=0.0)
        tracker.enable(hot_min=1)
        assert tracker.hot_min == 1
        assert tracker.top_k == 4


class TestRenderReport:
    def test_disabled_summary(self):
        assert "not enabled" in render_report({"enabled": False})

    def test_report_sections(self):
        tracker = make_tracker(hot_min=2, sample_interval=1.0)
        tracker.occupancy_source = lambda: [
            ("tier1", 30, 100), ("tier2", 0, None),
        ]
        for t in range(6):
            tracker.record("get", "hotkey", size=256, at=float(t))
        text = render_report(tracker.summary())
        assert "workload heat: 6 accesses" in text
        assert "hot keys (1):" in text
        assert "hotkey" in text and "#" in text
        assert "tier1" in text and "tier2" in text
        assert "unbounded" in text  # capacity-less tier renders as such
        assert "occupancy timeline" in text

    def test_report_is_deterministic(self):
        def build():
            tracker = make_tracker(hot_min=1)
            tracker.occupancy_source = lambda: [("tier1", 5, 10)]
            for t in range(7):
                tracker.record("get", f"k{t % 2}", size=100, at=float(t))
            return render_report(tracker.summary())

        assert build() == build()


class TestMergeSummaries:
    def _summary(self, keys, start=0.0):
        tracker = make_tracker(hot_min=1)
        tracker.occupancy_source = lambda: [("tier1", 10, 100)]
        t = start
        for key in keys:
            tracker.record("get", key, size=128, at=t)
            tracker.record_tier("get", "tier1", at=t)
            t += 1.0
        return tracker.summary()

    def test_all_disabled(self):
        assert merge_summaries([{"enabled": False}]) == {"enabled": False}

    def test_single_part_is_identity(self):
        part = self._summary(["a", "a", "b"])
        assert merge_summaries([part, {"enabled": False}]) is part

    def test_merge_unions_hot_and_sums_traffic(self):
        left = self._summary(["a"] * 5)
        right = self._summary(["b"] * 3, start=100.0)
        merged = merge_summaries([left, right])
        assert merged["enabled"] is True
        assert merged["accesses"]["total"] == 8
        assert merged["hot_keys"][:2] == ["a", "b"]  # re-ranked by count
        assert merged["tiers"]["tier1"]["reads"] == 8
        assert merged["tracked_objects"] == 2
        assert json.loads(json.dumps(merged)) == merged


HEAT_SPEC = """
Tiera HeatDemo() {
    tier1: { name: Memcached, size: 5G };
    tier2: { name: EBS, size: 50G };
    event(insert.into) : response { store(what: insert.object, to: tier2); }
    background event(heat.hot(alpha)) : response {
        copy(what: alpha, to: tier1);
    }
}
"""


class TestHeatSpecIntegration:
    def test_promote_on_hot_fires(self, registry):
        inst = compile_spec(HEAT_SPEC, registry)
        inst.enable_heat(hot_min=4)
        server = TieraServer(inst)
        server.put("alpha", b"v" * 64)
        server.put("beta", b"v" * 64)
        for _ in range(6):
            server.get("alpha")
        assert inst.obs.heat.is_hot("alpha")
        assert "tier1" not in inst.meta("alpha").locations
        # Background threshold responses run off the simulated clock.
        registry.cluster.clock.advance(1.0)
        assert "tier1" in inst.meta("alpha").locations
        assert "tier1" not in inst.meta("beta").locations

    def test_heat_hot_arity_is_checked(self, registry):
        bad = HEAT_SPEC.replace("heat.hot(alpha)", "heat.hot(alpha, beta)")
        with pytest.raises(PolicyError):
            compile_spec(bad, registry)

    def test_unknown_predicate_rejected(self, registry):
        bad = HEAT_SPEC.replace("heat.hot(alpha)", "heat.warm(alpha)")
        with pytest.raises(PolicyError):
            compile_spec(bad, registry)

    def test_heat_attr_refs_resolve(self, registry):
        inst = compile_spec(HEAT_SPEC, registry)
        inst.enable_heat(hot_min=2)
        server = TieraServer(inst)
        server.put("alpha", b"v" * 64)
        for _ in range(3):
            server.get("alpha")
        scope = EvalScope(instance=inst)
        assert AttrRef(("heat", "accesses")).evaluate(scope) == 4
        assert AttrRef(("heat", "reads")).evaluate(scope) == 3
        assert AttrRef(("heat", "hot_count")).evaluate(scope) == 1
        assert AttrRef(("heat", "tier2", "writes")).evaluate(scope) >= 1
        assert HeatHot("alpha").evaluate(scope) is True
        assert HeatHot("beta").evaluate(scope) is False

    def test_heat_refs_require_enabled_tracker(self, registry):
        inst = compile_spec(HEAT_SPEC, registry)
        scope = EvalScope(instance=inst)
        with pytest.raises(PolicyError):
            AttrRef(("heat", "accesses")).evaluate(scope)
        with pytest.raises(PolicyError):
            HeatHot("alpha").evaluate(scope)

    def test_unknown_heat_attrs_rejected(self, registry):
        inst = compile_spec(HEAT_SPEC, registry)
        inst.enable_heat()
        scope = EvalScope(instance=inst)
        with pytest.raises(PolicyError):
            AttrRef(("heat", "temperature")).evaluate(scope)
        with pytest.raises(PolicyError):
            AttrRef(("heat", "tier9", "reads")).evaluate(scope)
        with pytest.raises(PolicyError):
            AttrRef(("heat",)).evaluate(scope)


class TestServerHeatSurface:
    def test_health_and_summary_carry_heat(self, registry):
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 64 * 1024), ("tier2", "EBS", 10 ** 7)],
        )
        server = TieraServer(inst)
        assert server.heat_summary() == {"enabled": False}
        assert "heat" not in server.health()
        server.enable_heat(hot_min=2)
        server.put("k", b"x" * 128)
        for _ in range(3):
            server.get("k")
        health = server.health()
        assert health["heat"]["accesses"] == 4
        assert health["heat"]["hot_keys"] == ["k"]
        summary = server.heat_summary()
        assert summary["enabled"] and summary["hot_keys"] == ["k"]
        assert "tier1" in summary["tiers"]
