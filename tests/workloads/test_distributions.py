"""Key-popularity distributions: ranges, skew, determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.distributions import (
    SpecialDistribution,
    UniformKeys,
    ZipfianKeys,
)


class TestUniform:
    def test_range(self):
        gen = UniformKeys(100, seed=1)
        samples = [gen.next() for _ in range(1000)]
        assert all(0 <= s < 100 for s in samples)
        assert len(set(samples)) > 50  # actually spreads

    def test_seeded_determinism(self):
        a = UniformKeys(100, seed=7)
        b = UniformKeys(100, seed=7)
        assert [a.next() for _ in range(20)] == [b.next() for _ in range(20)]

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformKeys(0)


class TestZipfian:
    def test_rank_zero_is_hottest(self):
        gen = ZipfianKeys(1000, theta=0.99, seed=3)
        samples = [gen.next_rank() for _ in range(20000)]
        counts = {}
        for s in samples:
            counts[s] = counts.get(s, 0) + 1
        assert counts[0] > counts.get(10, 0) > counts.get(500, 1) - 1

    def test_head_concentration(self):
        gen = ZipfianKeys(10000, theta=0.99, seed=5)
        samples = [gen.next_rank() for _ in range(20000)]
        head = sum(1 for s in samples if s < 100)  # top 1 %
        assert head / len(samples) > 0.3

    def test_higher_theta_is_more_skewed(self):
        mild = ZipfianKeys(10000, theta=0.8, seed=1)
        steep = ZipfianKeys(10000, theta=1.2, seed=1)
        mild_head = sum(1 for _ in range(5000) if mild.next_rank() == 0)
        steep_head = sum(1 for _ in range(5000) if steep.next_rank() == 0)
        assert steep_head > mild_head

    def test_scramble_spreads_hot_keys(self):
        gen = ZipfianKeys(10000, theta=0.99, seed=2, scramble=True)
        hot = {gen.next() for _ in range(100)}
        assert max(hot) > 1000  # no longer clustered at the low end

    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=30, deadline=None)
    def test_samples_in_range(self, n):
        gen = ZipfianKeys(n, seed=1)
        assert all(0 <= gen.next() < n for _ in range(50))

    def test_theta_one_handled(self):
        gen = ZipfianKeys(100, theta=1.0, seed=1)
        assert 0 <= gen.next() < 100


class TestSpecial:
    def test_hot_fraction_gets_hot_probability(self):
        gen = SpecialDistribution(10000, hot_fraction=0.1, seed=9)
        samples = [gen.next() for _ in range(20000)]
        hot = sum(1 for s in samples if s < 1000)
        assert hot / len(samples) == pytest.approx(0.8, abs=0.02)

    def test_cold_accesses_spread(self):
        gen = SpecialDistribution(10000, hot_fraction=0.01, seed=9)
        cold = [s for s in (gen.next() for _ in range(20000)) if s >= 100]
        assert min(cold) >= 100
        assert max(cold) > 9000

    def test_degenerate_all_hot(self):
        gen = SpecialDistribution(10, hot_fraction=1.0, seed=1)
        assert all(0 <= gen.next() < 10 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            SpecialDistribution(100, hot_fraction=0)
        with pytest.raises(ValueError):
            SpecialDistribution(100, hot_fraction=1.5)
