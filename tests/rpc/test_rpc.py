"""RPC server/client over real sockets (WallClock instances)."""

import threading

import pytest

from repro.core.instance import TieraInstance
from repro.core.policy import Policy, Rule
from repro.core.events import ActionEvent
from repro.core.responses import Store
from repro.core.selectors import InsertObject
from repro.core.server import TieraServer
from repro.rpc import RpcError, TieraClient, TieraRpcServer
from repro.simcloud.clock import WallClock
from repro.simcloud.cluster import Cluster
from repro.tiers.registry import TierRegistry


@pytest.fixture
def live_server():
    clock = WallClock()
    cluster = Cluster(clock=clock)
    registry = TierRegistry(cluster)
    tiers = [
        registry.create("Memcached", tier_name="tier1", size=64 * 1024 * 1024),
        registry.create("EBS", tier_name="tier2", size=64 * 1024 * 1024),
    ]
    instance = TieraInstance(
        name="rpc-test",
        tiers=tiers,
        policy=Policy([
            Rule(
                ActionEvent("insert"),
                [Store(InsertObject(), ("tier1", "tier2"))],
                name="write-through",
            )
        ]),
        clock=clock,
    )
    rpc = TieraRpcServer(TieraServer(instance), port=0).start()
    yield rpc
    rpc.stop()
    instance.shutdown()
    clock.shutdown()


@pytest.fixture
def client(live_server):
    with TieraClient(live_server.host, live_server.port) as conn:
        yield conn


class TestRpcRoundtrip:
    def test_ping(self, client):
        assert client.ping()

    def test_put_get(self, client):
        latency = client.put("k", b"remote bytes")
        assert latency >= 0
        assert client.get("k") == b"remote bytes"

    def test_binary_safety(self, client):
        payload = bytes(range(256)) * 8
        client.put("bin", payload)
        assert client.get("bin") == payload

    def test_delete_and_contains(self, client):
        client.put("k", b"v")
        assert client.contains("k")
        client.delete("k")
        assert not client.contains("k")

    def test_stat(self, client):
        client.put("k", b"hello", tags=["web"])
        stat = client.stat("k")
        assert stat["size"] == 5
        assert stat["tags"] == ["web"]
        assert sorted(stat["locations"]) == ["tier1", "tier2"]

    def test_tags_and_keys(self, client):
        client.put("a", b"1", tags=["x"])
        client.put("b", b"2")
        client.add_tag("b", "x")
        assert client.keys(tag="x") == ["a", "b"]
        assert client.keys() == ["a", "b"]

    def test_tiers_listing(self, client):
        tiers = client.tiers()
        assert [t["name"] for t in tiers] == ["tier1", "tier2"]
        assert all(t["available"] for t in tiers)

    def test_missing_key_error(self, client):
        with pytest.raises(RpcError) as excinfo:
            client.get("ghost")
        assert excinfo.value.error_type == "NoSuchObjectError"

    def test_unknown_method(self, live_server, client):
        with pytest.raises(RpcError) as excinfo:
            client._call("explode")
        assert excinfo.value.error_type == "UnknownMethod"


class TestConcurrency:
    def test_parallel_clients(self, live_server):
        errors = []

        def worker(worker_id):
            try:
                with TieraClient(live_server.host, live_server.port) as conn:
                    for i in range(20):
                        key = f"w{worker_id}-{i}"
                        conn.put(key, key.encode())
                        assert conn.get(key) == key.encode()
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []

    def test_sequential_requests_one_connection(self, client):
        for i in range(50):
            client.put(f"k{i}", b"x")
        assert len(client.keys()) == 50
