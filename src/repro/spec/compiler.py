"""Compiler: specification AST → a live Tiera instance.

The paper's prototype hand-codes each policy; compilation of
specification files is listed as future work (§3).  Here we implement
it.  :func:`compile_source` lowers parsed declarations onto the core
policy machinery:

* tier declarations provision tiers through the
  :class:`~repro.tiers.registry.TierRegistry`;
* ``event(insert.into [== tierX])`` → :class:`ActionEvent`;
* ``event(time=t)`` → :class:`TimerEvent` (``t`` from the instance's
  formal parameters, bound at compile time);
* any other event expression → :class:`ThresholdEvent` (``background``
  prefix honoured); an ``==`` against a percent literal is lowered to
  ``>=`` because the paper's ``tier1.filled == 75%`` means "reaches";
* response-block statements map onto the Table 1 response classes,
  assignments onto :class:`SetAttr`, ``if`` onto :class:`Conditional`.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.conditions import (
    And,
    AttrRef,
    Comparison,
    Condition,
    HeatHot,
    Literal,
    Or,
    TierFull,
)
from repro.core.errors import PolicyError
from repro.core.events import ActionEvent, Event, ThresholdEvent, TimerEvent
from repro.core.instance import TieraInstance
from repro.core.policy import Policy, Rule
from repro.core.responses import (
    Compress,
    Conditional,
    Copy,
    Decrypt,
    Delete,
    Encrypt,
    Grow,
    Move,
    Response,
    Retrieve,
    SetAttr,
    Shrink,
    Store,
    StoreOnce,
    Uncompress,
)
from repro.core.selectors import (
    InsertObject,
    NamedObjects,
    ObjectsWhere,
    Selector,
    TierNewest,
    TierOldest,
)
from repro.spec import ast
from repro.spec.parser import parse
from repro.tiers.registry import TierRegistry

_ACTION_HEADS = {
    ("insert", "into"): "insert",
    ("delete", "of"): "delete",
    ("delete", "from"): "delete",
    ("get", "of"): "get",
    ("get", "from"): "get",
}


class Compiler:
    def __init__(
        self,
        spec: ast.InstanceSpec,
        registry: TierRegistry,
        args: Optional[Dict[str, object]] = None,
    ):
        self.spec = spec
        self.registry = registry
        self.args = dict(args or {})
        self.tier_names: Set[str] = {t.tier_name for t in spec.tiers}
        self.param_names: Set[str] = {p.name for p in spec.params}
        missing = self.param_names - set(self.args)
        if missing:
            raise PolicyError(
                f"instance {spec.name!r} needs arguments for: {sorted(missing)}"
            )

    # -- top level -----------------------------------------------------------

    def compile(self) -> TieraInstance:
        tiers = []
        for decl in self.spec.tiers:
            if not self.registry.known(decl.product):
                raise PolicyError(
                    f"line {decl.line}: unknown tier product {decl.product!r}"
                )
            tiers.append(
                self.registry.create(
                    decl.product,
                    tier_name=decl.tier_name,
                    size=decl.size,
                    zone=decl.zone or "us-east-1a",
                )
            )
        rules = [
            self._compile_event(decl, index)
            for index, decl in enumerate(self.spec.events, start=1)
        ]
        return TieraInstance(
            name=self.spec.name,
            tiers=tiers,
            policy=Policy(rules),
            clock=self.registry.cluster.clock,
        )

    # -- events ---------------------------------------------------------------

    def _compile_event(self, decl: ast.EventDecl, index: int) -> Rule:
        event = self._classify_event(decl)
        responses = [self._compile_stmt(stmt) for stmt in decl.body]
        return Rule(
            event,
            responses,
            background=decl.background,
            name=f"{self.spec.name}-rule-{index}",
        )

    def _classify_event(self, decl: ast.EventDecl) -> Event:
        expr = decl.expr
        if isinstance(expr, ast.PathExpr):
            kind = _ACTION_HEADS.get(expr.parts)
            if kind is not None:
                return ActionEvent(kind)
        if isinstance(expr, ast.CompareExpr) and isinstance(expr.lhs, ast.PathExpr):
            lhs_parts = expr.lhs.parts
            if lhs_parts == ("time",) and expr.op in ("=", "=="):
                return TimerEvent(self._numeric_value(expr.rhs))
            kind = _ACTION_HEADS.get(lhs_parts)
            if kind is not None and expr.op in ("=", "=="):
                if not isinstance(expr.rhs, ast.PathExpr) or len(expr.rhs.parts) != 1:
                    raise PolicyError(
                        f"line {decl.line}: action event must compare to a tier name"
                    )
                return ActionEvent(kind, tier=expr.rhs.parts[0])
        condition = self._compile_condition(expr, threshold=True)
        return ThresholdEvent(condition, background=decl.background)

    def _numeric_value(self, expr: ast.Expr) -> float:
        if isinstance(expr, ast.LiteralExpr):
            return float(expr.value)
        if isinstance(expr, ast.PathExpr) and len(expr.parts) == 1:
            name = expr.parts[0]
            if name in self.args:
                return float(self.args[name])
        raise PolicyError(f"expected a number or parameter, got {expr!r}")

    # -- conditions ------------------------------------------------------------

    def _compile_condition(self, expr: ast.Expr, threshold: bool = False) -> Condition:
        if isinstance(expr, ast.BoolExpr):
            parts = [self._compile_condition(p, threshold) for p in expr.parts]
            return And(*parts) if expr.op == "and" else Or(*parts)
        if isinstance(expr, ast.CompareExpr):
            op = "==" if expr.op == "=" else expr.op
            # "tier1.filled == 75%" means *reaches* 75% (edge threshold).
            if (
                threshold
                and op == "=="
                and isinstance(expr.rhs, ast.LiteralExpr)
                and expr.rhs.unit == "percent"
            ):
                op = ">="
            return Comparison(
                op, self._compile_value(expr.lhs), self._compile_value(expr.rhs)
            )
        if isinstance(expr, ast.PathExpr):
            # Bare `tierX.filled` in a boolean position means "is full".
            if (
                len(expr.parts) == 2
                and expr.parts[0] in self.tier_names
                and expr.parts[1] == "filled"
            ):
                return TierFull(expr.parts[0])
            return self._compile_value(expr)
        if isinstance(expr, ast.LiteralExpr):
            return Literal(expr.value)
        if isinstance(expr, ast.CallExpr):
            return self._compile_call_expr(expr)
        raise PolicyError(f"cannot compile condition {expr!r}")

    def _compile_call_expr(self, expr: ast.CallExpr) -> Condition:
        if expr.func == ("heat", "hot"):
            if len(expr.args) != 1:
                raise PolicyError("heat.hot() takes exactly one key argument")
            return HeatHot(self._string_arg(expr.args[0], "heat.hot"))
        raise PolicyError(
            f"unknown predicate {'.'.join(expr.func)!r} in condition"
        )

    def _string_arg(self, expr: ast.Expr, context: str) -> str:
        """A string-valued call argument: a string literal, a parameter,
        or a bare identifier taken as a literal key (the `store(to:
        tier1)` idiom)."""
        if isinstance(expr, ast.LiteralExpr) and expr.unit == "string":
            return str(expr.value)
        if isinstance(expr, ast.PathExpr) and len(expr.parts) == 1:
            name = expr.parts[0]
            if name in self.args:
                return str(self.args[name])
            return name
        raise PolicyError(f"{context}: argument must be a key name or string")

    def _compile_value(self, expr: ast.Expr) -> Condition:
        if isinstance(expr, ast.LiteralExpr):
            return Literal(expr.value)
        if isinstance(expr, ast.PathExpr):
            if len(expr.parts) == 1:
                name = expr.parts[0]
                if name in self.args:
                    return Literal(self.args[name])
                if name in self.tier_names:
                    return Literal(name)  # tiers compare by name
            return AttrRef(expr.parts)
        if isinstance(expr, (ast.CompareExpr, ast.BoolExpr)):
            return self._compile_condition(expr)
        if isinstance(expr, ast.CallExpr):
            return self._compile_call_expr(expr)
        raise PolicyError(f"cannot compile value {expr!r}")

    # -- statements ---------------------------------------------------------------

    def _compile_stmt(self, stmt: ast.Stmt) -> Response:
        if isinstance(stmt, ast.AssignStmt):
            return self._compile_assign(stmt)
        if isinstance(stmt, ast.IfStmt):
            return Conditional(
                self._compile_condition(stmt.condition),
                then=[self._compile_stmt(s) for s in stmt.then],
                otherwise=[self._compile_stmt(s) for s in stmt.otherwise],
            )
        if isinstance(stmt, ast.CallStmt):
            return self._compile_call(stmt)
        raise PolicyError(f"cannot compile statement {stmt!r}")

    def _compile_assign(self, stmt: ast.AssignStmt) -> SetAttr:
        if not isinstance(stmt.value, ast.LiteralExpr):
            raise PolicyError(
                f"line {stmt.line}: assignments take literal values only"
            )
        return SetAttr(tuple(stmt.target.parts), stmt.value.value)

    def _compile_call(self, stmt: ast.CallStmt) -> Response:
        name = stmt.name
        builder = getattr(self, f"_call_{name}", None)
        if builder is None:
            raise PolicyError(f"line {stmt.line}: unknown response {name!r}")
        return builder(stmt)

    # -- per-response argument handling ----------------------------------------------

    def _selector(self, stmt: ast.CallStmt, arg: str = "what") -> Selector:
        expr = stmt.args.get(arg)
        if expr is None:
            raise PolicyError(f"line {stmt.line}: {stmt.name} needs '{arg}:'")
        if isinstance(expr, ast.PathExpr):
            if expr.parts == ("insert", "object"):
                return InsertObject()
            if len(expr.parts) == 2 and expr.parts[0] in self.tier_names:
                if expr.parts[1] == "oldest":
                    return TierOldest(expr.parts[0])
                if expr.parts[1] == "newest":
                    return TierNewest(expr.parts[0])
            if len(expr.parts) == 1 and expr.parts[0] not in self.tier_names:
                return NamedObjects(expr.parts[0])
        if isinstance(expr, ast.LiteralExpr) and expr.unit == "string":
            return NamedObjects(str(expr.value))
        if isinstance(expr, (ast.CompareExpr, ast.BoolExpr)):
            return ObjectsWhere(self._compile_condition(expr))
        raise PolicyError(
            f"line {stmt.line}: cannot interpret 'what:' selector for {stmt.name}"
        )

    def _tier_arg(self, stmt: ast.CallStmt, arg: str, required: bool = True):
        expr = stmt.args.get(arg)
        if expr is None:
            if required:
                raise PolicyError(f"line {stmt.line}: {stmt.name} needs '{arg}:'")
            return None
        if isinstance(expr, ast.PathExpr) and len(expr.parts) == 1:
            tier = expr.parts[0]
            if tier not in self.tier_names:
                raise PolicyError(f"line {stmt.line}: unknown tier {tier!r}")
            return tier
        raise PolicyError(f"line {stmt.line}: '{arg}:' must name a tier")

    def _literal_arg(self, stmt: ast.CallStmt, arg: str, unit: Optional[str] = None):
        expr = stmt.args.get(arg)
        if expr is None:
            return None
        if isinstance(expr, ast.LiteralExpr):
            if unit is not None and expr.unit != unit:
                raise PolicyError(
                    f"line {stmt.line}: '{arg}:' must be a {unit} literal"
                )
            return expr.value
        if isinstance(expr, ast.PathExpr) and len(expr.parts) == 1:
            name = expr.parts[0]
            if name in self.args:
                return self.args[name]
        raise PolicyError(f"line {stmt.line}: '{arg}:' must be a literal")

    def _call_store(self, stmt: ast.CallStmt) -> Store:
        return Store(
            self._selector(stmt),
            self._tier_arg(stmt, "to"),
            evict_to=self._tier_arg(stmt, "evict_to", required=False),
        )

    def _call_storeOnce(self, stmt: ast.CallStmt) -> StoreOnce:
        return StoreOnce(
            self._selector(stmt),
            self._tier_arg(stmt, "to"),
            evict_to=self._tier_arg(stmt, "evict_to", required=False),
        )

    def _call_retrieve(self, stmt: ast.CallStmt) -> Retrieve:
        return Retrieve(
            self._selector(stmt),
            promote_to=self._tier_arg(stmt, "promote_to", required=False),
        )

    def _call_copy(self, stmt: ast.CallStmt) -> Copy:
        return Copy(
            self._selector(stmt),
            self._tier_arg(stmt, "to"),
            bandwidth=self._literal_arg(stmt, "bandwidth"),
        )

    def _call_move(self, stmt: ast.CallStmt) -> Move:
        return Move(
            self._selector(stmt),
            self._tier_arg(stmt, "to"),
            bandwidth=self._literal_arg(stmt, "bandwidth"),
        )

    def _call_delete(self, stmt: ast.CallStmt) -> Delete:
        source = self._tier_arg(stmt, "from_tier", required=False)
        return Delete(self._selector(stmt), tiers=(source,) if source else None)

    def _call_encrypt(self, stmt: ast.CallStmt) -> Encrypt:
        key = self._literal_arg(stmt, "key", unit="string")
        if key is None:
            raise PolicyError(f"line {stmt.line}: encrypt needs 'key:'")
        return Encrypt(self._selector(stmt), str(key))

    def _call_decrypt(self, stmt: ast.CallStmt) -> Decrypt:
        key = self._literal_arg(stmt, "key", unit="string")
        if key is None:
            raise PolicyError(f"line {stmt.line}: decrypt needs 'key:'")
        return Decrypt(self._selector(stmt), str(key))

    def _call_compress(self, stmt: ast.CallStmt) -> Compress:
        return Compress(self._selector(stmt))

    def _call_uncompress(self, stmt: ast.CallStmt) -> Uncompress:
        return Uncompress(self._selector(stmt))

    def _call_grow(self, stmt: ast.CallStmt) -> Grow:
        percent = self._literal_arg(stmt, "increment", unit="percent")
        if percent is None:
            raise PolicyError(f"line {stmt.line}: grow needs 'increment:'")
        return Grow(self._tier_arg(stmt, "what"), float(percent) * 100.0)

    def _call_snapshot(self, stmt: ast.CallStmt) -> "Response":
        from repro.core.responses import Snapshot

        label = self._literal_arg(stmt, "label", unit="string")
        if label is None:
            raise PolicyError(f"line {stmt.line}: snapshot needs 'label:'")
        return Snapshot(
            self._selector(stmt), to=self._tier_arg(stmt, "to"), label=str(label)
        )

    def _call_backupSnapshot(self, stmt: ast.CallStmt) -> "Response":
        from repro.core.responses import BackupSnapshot

        expr = stmt.args.get("kind")
        if expr is None:
            kind = "auto"
        elif (
            isinstance(expr, ast.PathExpr)
            and len(expr.parts) == 1
            and expr.parts[0] not in self.args
        ):
            # Bare-identifier idiom, like store(to: tier1).
            kind = expr.parts[0]
        else:
            kind = str(self._literal_arg(stmt, "kind", unit="string"))
        if kind not in ("auto", "full", "incremental"):
            raise PolicyError(
                f"line {stmt.line}: backupSnapshot 'kind:' must be "
                f"\"auto\", \"full\", or \"incremental\""
            )
        return BackupSnapshot(kind=kind)

    def _call_verifyBackup(self, stmt: ast.CallStmt) -> "Response":
        from repro.core.responses import VerifyBackup

        return VerifyBackup()

    def _call_adaptive_placement(self, stmt: ast.CallStmt) -> "Response":
        from repro.core.placement import OBJECTIVES
        from repro.core.responses import AdaptivePlacement

        expr = stmt.args.get("objective")
        if expr is None:
            objective = "balanced"
        elif (
            isinstance(expr, ast.PathExpr)
            and len(expr.parts) == 1
            and expr.parts[0] not in self.args
        ):
            # Bare-identifier idiom, like store(to: tier1).
            objective = expr.parts[0]
        else:
            objective = str(self._literal_arg(stmt, "objective", unit="string"))
        if objective not in OBJECTIVES:
            raise PolicyError(
                f"line {stmt.line}: adaptive_placement 'objective:' must "
                f"be one of {', '.join(sorted(OBJECTIVES))}"
            )
        interval_expr = stmt.args.get("interval")
        if interval_expr is None:
            interval = 60.0
        else:
            interval = float(self._numeric_value(interval_expr))
            if interval <= 0:
                raise PolicyError(
                    f"line {stmt.line}: adaptive_placement 'interval:' "
                    f"must be positive"
                )
        return AdaptivePlacement(objective=objective, interval=interval)

    def _call_shrink(self, stmt: ast.CallStmt) -> Shrink:
        percent = self._literal_arg(stmt, "decrement", unit="percent")
        if percent is None:
            raise PolicyError(f"line {stmt.line}: shrink needs 'decrement:'")
        return Shrink(self._tier_arg(stmt, "what"), float(percent) * 100.0)


def compile_source(
    source: str,
    registry: TierRegistry,
    args: Optional[Dict[str, object]] = None,
) -> TieraInstance:
    """Parse and compile a specification string into a live instance."""
    return Compiler(parse(source), registry, args).compile()


# Back-compat alias used throughout the docs.
compile_spec = compile_source
