"""Backup lifecycle: incremental snapshots, PITR, scheduled verification.

PR 3 gave the instance crash consistency (an intent journal) and a
barman-style *full* snapshot.  This module grows those primitives into
an operational backup suite, the way barman grows pg_basebackup:

* **Changed-object incremental snapshots.**  The :class:`BackupManager`
  tracks which objects changed since the last snapshot — fed by the
  journal's archiver hook for data operations and the instance's
  ``on_meta_change`` hook for metadata-only edits (tags, aliases, fsck
  repairs) — and an incremental snapshot archives only those deltas.
  Restore reconstructs state from a full snapshot plus its chain of
  incrementals; every link carries the full-state digest at its capture
  point and the SHA-256 of its parent's archive, so a broken or
  tampered chain fails closed.

* **Journal archiving and point-in-time restore.**  Committed journal
  records are appended to an archived write-ahead log instead of being
  discarded.  ``restore(to_seq=…)`` / ``restore(to_time=…)`` applies
  the nearest preceding snapshot chain and replays archived records up
  to the target, deterministically: same store, same target, same
  bytes.  Aborted intents and policy scopes archive as markers, so the
  sequence numbering has no holes and a gap is always a real hole in
  history (a clean :class:`~repro.core.errors.BackupError`, never a
  silently wrong restore).

* **Retention and immutability.**  :meth:`BackupManager.prune` applies
  keep-last-N / keep-window policy but never orphans a chain: a full
  snapshot a surviving incremental depends on is protected, as is the
  newest full.  Snapshots marked immutable cannot be pruned at all —
  the attempt is a policy violation surfaced in audit and metrics.

* **Scheduled recovery verification.**  :meth:`verify_restore` rebuilds
  the latest chain into a scratch instance (own cluster, own clock),
  replays the WAL tail, and checks digest + fsck.  Driven from policy
  via the ``verifyBackup()`` response on a timer event, its result is
  the ``last_verified_restore`` surfaced in ``health()`` — "when did
  this instance last *verifiably* restore?" becomes a query.

Everything on disk is written atomically (temp + rename) and all
timestamps are virtual, so backup artifacts are deterministic for
seeded histories.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from repro.core.durability import (
    SNAPSHOT_FORMAT,
    _b64,
    _erase,
    _unb64,
    archived_state,
    fsck,
    pack_archive,
    restore_archive,
    snapshot_archive,
)
from repro.core.errors import BackupError
from repro.core.objects import ObjectMeta
from repro.obs.audit import AuditRecord
from repro.simcloud.resources import RequestContext

#: Backup store layout version (bump on incompatible change).
BACKUP_FORMAT = 1

#: Journal ops that carry a redo plan (everything else is a marker).
_REPLAYABLE = ("write", "remove", "rewrite", "delete")


def _atomic_write(path: str, blob: bytes) -> None:
    """Write-to-temp + rename: readers never observe a torn file."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as out:
        out.write(blob)
    os.replace(tmp, path)


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


class BackupManager:
    """Incremental snapshots, WAL archiving, PITR, retention, verification.

    Layered on an instance's :class:`~repro.core.durability.DurabilityLayer`
    and rooted at a directory::

        root/
          catalog.json                     # snapshot catalog (atomic)
          snapshots/snap_000001_full.tar   # deterministic tar archives
          wal/segment_000000000000_000000000063.jsonl
          wal/current.jsonl                # append-only open segment
          verify.json                      # last verification result
    """

    def __init__(
        self,
        instance,
        root: str,
        segment_records: int = 64,
        assume_continuity: bool = False,
    ):
        if instance.durability is None:
            raise BackupError("backups require the durability layer")
        self.instance = instance
        self.root = root
        self.segment_records = max(1, int(segment_records))
        self._snapshot_dir = os.path.join(root, "snapshots")
        self._wal_dir = os.path.join(root, "wal")
        self._catalog_path = os.path.join(root, "catalog.json")
        self._current_path = os.path.join(self._wal_dir, "current.jsonl")
        self._verify_path = os.path.join(root, "verify.json")

        self.snapshots: List[Dict[str, object]] = []
        self._next_id = 1
        #: archived WAL, seq -> entry (every begun seq exactly once)
        self._wal: Dict[int, Dict[str, object]] = {}
        #: high-water mark of the sequence space; survives WAL pruning
        #: (max(self._wal) would collapse when retention drops records)
        self._last_seq = -1
        #: entries living in the open segment (rotation bookkeeping)
        self._tail: List[Dict[str, object]] = []
        #: objects changed since the last snapshot
        self._dirty: set = set()
        #: a detached window may have missed changes: next snapshot full
        self._force_full = False
        self.last_verified_restore: Optional[Dict[str, object]] = None

        metrics = instance.obs.metrics
        self._snap_counter = metrics.counter(
            "tiera_backup_snapshots_total", "Backup snapshots taken, by kind."
        )
        self._snap_bytes = metrics.counter(
            "tiera_backup_snapshot_bytes_total",
            "Bytes written to snapshot archives, by kind.",
        )
        self._wal_counter = metrics.counter(
            "tiera_backup_wal_records_total",
            "Journal records archived to the backup WAL.",
        )
        self._restore_counter = metrics.counter(
            "tiera_backup_restores_total", "Backup restores applied."
        )
        self._verify_counter = metrics.counter(
            "tiera_backup_verifications_total",
            "Scheduled recovery verifications, by outcome.",
        )
        self._prune_counter = metrics.counter(
            "tiera_backup_pruned_total", "Snapshots removed by retention."
        )
        self._violation_counter = metrics.counter(
            "tiera_backup_policy_violations_total",
            "Refused attempts to delete immutable snapshots.",
        )

        self._load(assume_continuity)
        # Archived history owns the sequence space: a successor journal
        # rebuilt from (empty) pending records must not reuse seqs that
        # are already in the WAL.
        journal = instance.durability.journal
        journal._next_seq = max(journal._next_seq, self.last_seq + 1)
        journal.archiver = self._archive_record
        instance.on_meta_change = self._note_meta_change

    # -- store loading ------------------------------------------------------

    def _load(self, assume_continuity: bool) -> None:
        os.makedirs(self._snapshot_dir, exist_ok=True)
        os.makedirs(self._wal_dir, exist_ok=True)
        # A crash mid-atomic-write leaves only a temp file; discard it.
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for fname in filenames:
                if fname.endswith(".tmp"):
                    os.remove(os.path.join(dirpath, fname))

        if os.path.exists(self._catalog_path):
            try:
                with open(self._catalog_path, "rb") as handle:
                    catalog = json.loads(handle.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise BackupError(f"unreadable backup catalog: {exc}") from exc
            self.snapshots = list(catalog.get("snapshots", []))
            self._next_id = int(catalog.get("next_id", len(self.snapshots) + 1))
        # An archive the catalog does not reference is a crash remnant
        # (died between writing the blob and committing the catalog).
        referenced = {str(e["file"]) for e in self.snapshots}
        for fname in os.listdir(self._snapshot_dir):
            if fname not in referenced:
                os.remove(os.path.join(self._snapshot_dir, fname))

        wal_files = sorted(
            fname for fname in os.listdir(self._wal_dir)
            if fname.startswith("segment_") and fname.endswith(".jsonl")
        )
        for fname in wal_files:
            self._read_wal_file(os.path.join(self._wal_dir, fname))
        if os.path.exists(self._current_path):
            self._tail = self._read_wal_file(self._current_path)

        if os.path.exists(self._verify_path):
            try:
                with open(self._verify_path, "rb") as handle:
                    self.last_verified_restore = json.loads(
                        handle.read().decode("utf-8")
                    )
            except (ValueError, UnicodeDecodeError):
                self.last_verified_restore = None

        self._last_seq = max(
            [-1]
            + list(self._wal)
            + [int(e["upto_seq"]) for e in self.snapshots]
        )
        active = self._active_snapshots()
        if active and not assume_continuity:
            # Changes made while no manager was attached were never
            # tracked; an incremental over that window would lie.
            self._force_full = True
        elif active:
            since = int(active[-1]["upto_seq"])
            self._dirty = {
                str(e["record"].get("key", ""))
                for e in self._wal.values()
                if int(e["seq"]) > since and e["op"] in _REPLAYABLE
            }
            self._dirty.discard("")

    def _read_wal_file(self, path: str) -> List[Dict[str, object]]:
        """Load one WAL file; a torn final line (crash mid-append) is
        dropped, anything else unreadable is a hard error."""
        entries: List[Dict[str, object]] = []
        with open(path, "rb") as handle:
            lines = handle.read().split(b"\n")
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                if index >= len(lines) - 2 and path == self._current_path:
                    break  # torn tail: the record never fully landed
                raise BackupError(
                    f"corrupt WAL file {os.path.basename(path)!r}: {exc}"
                ) from exc
            self._wal[int(entry["seq"])] = entry
            entries.append(entry)
        return entries

    # -- change capture (journal archiver + metadata hook) ------------------

    @property
    def last_seq(self) -> int:
        """Highest sequence number ever archived (-1 before the first)."""
        return self._last_seq

    def _note_meta_change(self, key: str) -> None:
        self._dirty.add(key)

    def _archive_record(self, seq, record, applied) -> None:
        op = str(record.get("op", "?"))
        if not applied:
            # Never replay an intent whose redo plan did not take
            # effect; archive a marker so the seq space stays dense.
            entry = {"seq": seq, "time": self.instance.clock.now(),
                     "op": "noop", "record": {"was": op}}
        elif op == "scope":
            entry = {"seq": seq, "time": self.instance.clock.now(),
                     "op": "scope", "record": {
                         "rule": record.get("rule", ""),
                         "origin": record.get("origin", ""),
                     }}
        else:
            entry = {"seq": seq, "time": self.instance.clock.now(),
                     "op": op, "record": record}
            self._dirty.add(str(record.get("key", "")))
            self._dirty.discard("")
        self._wal[int(seq)] = entry
        self._last_seq = max(self._last_seq, int(seq))
        line = json.dumps(entry, sort_keys=True).encode("utf-8") + b"\n"
        with open(self._current_path, "ab") as out:
            out.write(line)
        self._tail.append(entry)
        self._wal_counter.inc()
        if len(self._tail) >= self.segment_records:
            self._rotate()

    def _rotate(self) -> None:
        """Seal the open segment.  Segment first, then truncate: a crash
        between the two leaves duplicates, which reload by seq dedupes."""
        if not self._tail:
            return
        first = int(self._tail[0]["seq"])
        last = int(self._tail[-1]["seq"])
        blob = b"".join(
            json.dumps(e, sort_keys=True).encode("utf-8") + b"\n"
            for e in self._tail
        )
        segment = os.path.join(
            self._wal_dir, "segment_%012d_%012d.jsonl" % (first, last)
        )
        _atomic_write(segment, blob)
        _atomic_write(self._current_path, b"")
        self._tail = []

    def _rewrite_wal(self) -> None:
        """Rewrite the on-disk WAL to exactly ``self._wal`` (after a
        truncation or retention cutoff)."""
        for fname in os.listdir(self._wal_dir):
            if fname.startswith("segment_") and fname.endswith(".jsonl"):
                os.remove(os.path.join(self._wal_dir, fname))
        entries = [self._wal[seq] for seq in sorted(self._wal)]
        blob = b"".join(
            json.dumps(e, sort_keys=True).encode("utf-8") + b"\n"
            for e in entries
        )
        _atomic_write(self._current_path, blob)
        self._tail = entries

    # -- catalog ------------------------------------------------------------

    def _save_catalog(self) -> None:
        blob = json.dumps(
            {
                "format": BACKUP_FORMAT,
                "next_id": self._next_id,
                "snapshots": self.snapshots,
            },
            indent=2, sort_keys=True,
        ).encode("utf-8")
        _atomic_write(self._catalog_path, blob)

    def _active_snapshots(self) -> List[Dict[str, object]]:
        """Catalog entries on the current timeline, oldest first."""
        return [e for e in self.snapshots if not e.get("retired")]

    def _entry(self, snapshot_id: int) -> Dict[str, object]:
        for entry in self.snapshots:
            if int(entry["id"]) == int(snapshot_id):
                return entry
        raise BackupError(f"no snapshot #{snapshot_id} in the catalog")

    def list_snapshots(self) -> List[Dict[str, object]]:
        return [dict(e) for e in self.snapshots]

    def mark_immutable(self, snapshot_id: int) -> Dict[str, object]:
        entry = self._entry(snapshot_id)
        entry["immutable"] = True
        self._save_catalog()
        return dict(entry)

    # -- snapshots ----------------------------------------------------------

    def snapshot(
        self, kind: str = "auto", immutable: bool = False
    ) -> Dict[str, object]:
        """Take a snapshot; returns its catalog entry.

        ``kind`` is ``"full"``, ``"incremental"``, or ``"auto"`` (an
        incremental when a usable parent exists, else a full).  The
        archive lands atomically: a crash mid-write leaves a temp file
        the next attach discards, never a torn archive the catalog
        trusts.
        """
        instance = self.instance
        active = self._active_snapshots()
        parent = active[-1] if active else None
        if kind not in ("auto", "full", "incremental"):
            raise BackupError(f"unknown snapshot kind {kind!r}")
        if kind == "incremental":
            if parent is None:
                raise BackupError("incremental snapshot needs a parent")
            if self._force_full:
                raise BackupError(
                    "change tracking has a gap (store was detached); "
                    "a full snapshot is required first"
                )
        if kind == "auto":
            kind = (
                "incremental" if parent is not None and not self._force_full
                else "full"
            )

        instance._crash_point("backup.snapshot.begin")
        if kind == "full":
            blob, manifest = snapshot_archive(instance)
            parent = None
        else:
            blob, manifest = self._incremental_archive(parent)
        snapshot_id = self._next_id
        fname = "snap_%06d_%s.tar" % (snapshot_id, kind)
        path = os.path.join(self._snapshot_dir, fname)
        tmp = path + ".tmp"
        with open(tmp, "wb") as out:
            out.write(blob)
        instance._crash_point("backup.snapshot.temp")
        os.replace(tmp, path)

        entry: Dict[str, object] = {
            "id": snapshot_id,
            "file": fname,
            "kind": kind,
            "parent": int(parent["id"]) if parent is not None else None,
            "base_seq": (
                int(parent["upto_seq"]) if parent is not None else -1
            ),
            "upto_seq": self.last_seq,
            "created_at": instance.clock.now(),
            "objects": int(manifest["objects"]),
            "bytes": len(blob),
            "state_digest": manifest["state_digest"],
            "archive_sha256": _sha256(blob),
            "immutable": bool(immutable),
        }
        self._next_id += 1
        self.snapshots.append(entry)
        self._save_catalog()
        instance._crash_point("backup.snapshot.done")
        self._dirty = set()
        self._force_full = False
        self._snap_counter.inc(kind=kind)
        self._snap_bytes.inc(len(blob), kind=kind)
        self._audit("snapshot", detail={
            "id": snapshot_id, "kind": kind, "objects": entry["objects"],
            "bytes": entry["bytes"], "upto_seq": entry["upto_seq"],
        })
        return dict(entry)

    def _incremental_archive(
        self, parent: Dict[str, object]
    ) -> Tuple[bytes, Dict[str, object]]:
        """Archive only the objects that changed since ``parent``."""
        instance = self.instance
        kept, tier_rows, digest = archived_state(instance)
        kept_by_key = {m.key: m for m in kept}
        dirty = sorted(self._dirty)
        changed = [k for k in dirty if k in kept_by_key]
        # Dirty but holding no archived copy any more: a deletion from
        # the backup's point of view (same exclusion as a full).
        deleted = [k for k in dirty if k not in kept_by_key]

        manifest: Dict[str, object] = {
            "format": SNAPSHOT_FORMAT,
            "kind": "incremental",
            "instance": instance.name,
            "created_at": instance.clock.now(),
            "parent_id": int(parent["id"]),
            "parent_sha256": parent["archive_sha256"],
            "base_seq": int(parent["upto_seq"]),
            "objects": len(changed),
            "deleted": deleted,
            "tier_order": instance.tiers.names(),
            "state_digest": digest,
        }
        members: List[Tuple[str, bytes]] = [(
            "manifest.json",
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        )]
        members.append((
            "metadata.jsonl",
            b"".join(kept_by_key[k].to_json() + b"\n" for k in changed),
        ))
        changed_set = set(changed)
        for tier_name, contents in tier_rows:
            if not contents:
                continue  # non-archived tier
            lines = b"".join(
                json.dumps(
                    {"key": k, "data_b64": _b64(contents[k])},
                    sort_keys=True,
                ).encode("utf-8") + b"\n"
                for k in sorted(changed_set & set(contents))
            )
            members.append((f"data/{tier_name}.jsonl", lines))
        return pack_archive(members), manifest

    # -- restore ------------------------------------------------------------

    def _read_archive(self, entry: Dict[str, object]) -> bytes:
        path = os.path.join(self._snapshot_dir, str(entry["file"]))
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            raise BackupError(
                f"snapshot #{entry['id']} archive is missing: {exc}"
            ) from exc
        if _sha256(blob) != entry["archive_sha256"]:
            raise BackupError(
                f"snapshot #{entry['id']} archive fails its integrity "
                f"digest — refusing to restore from it"
            )
        return blob

    def _chain(self, tip: Dict[str, object]) -> List[Dict[str, object]]:
        """The restore chain for ``tip``: full first, tip last."""
        chain = [tip]
        entry = tip
        while entry["kind"] != "full":
            parent_id = entry.get("parent")
            if parent_id is None:
                raise BackupError(
                    f"snapshot #{entry['id']} has no parent and is not full"
                )
            parent = self._entry(int(parent_id))
            chain.append(parent)
            entry = parent
        chain.reverse()
        return chain

    def _apply_chain(self, target, chain: List[Dict[str, object]]) -> None:
        """Rebuild ``target`` to the chain tip's captured state."""
        # Verify every link's bytes before mutating anything.
        blobs = [self._read_archive(entry) for entry in chain]
        for i in range(1, len(chain)):
            manifest = self._incr_manifest(blobs[i])
            if manifest.get("parent_sha256") != _sha256(blobs[i - 1]):
                raise BackupError(
                    f"snapshot #{chain[i]['id']} was not taken against "
                    f"#{chain[i - 1]['id']} — chain integrity broken"
                )
        result = restore_archive(target, blobs[0])
        if not result["verified"]:
            raise BackupError(
                f"full snapshot #{chain[0]['id']} failed its state digest"
            )
        for entry, blob in zip(chain[1:], blobs[1:]):
            self._apply_incremental(target, blob)
        digest = target.state_digest()
        expected = chain[-1]["state_digest"]
        if digest != expected:
            raise BackupError(
                f"restored state digest {digest[:12]}… does not match "
                f"snapshot #{chain[-1]['id']} ({str(expected)[:12]}…)"
            )

    def _incr_manifest(self, blob: bytes) -> Dict[str, object]:
        import io
        import tarfile

        from repro.core.durability import _read_member

        with tarfile.open(fileobj=io.BytesIO(blob)) as tar:
            return json.loads(_read_member(tar, "manifest.json"))

    def _apply_incremental(self, target, blob: bytes) -> None:
        import io
        import tarfile

        from repro.core.durability import _read_member

        with tarfile.open(fileobj=io.BytesIO(blob)) as tar:
            manifest = json.loads(_read_member(tar, "manifest.json"))
            metas = [
                ObjectMeta.from_json(line)
                for line in _read_member(tar, "metadata.jsonl").splitlines()
                if line
            ]
            tier_data: Dict[str, Dict[str, bytes]] = {}
            for member in tar.getnames():
                if not member.startswith("data/"):
                    continue
                tier_name = member[len("data/"):-len(".jsonl")]
                rows: Dict[str, bytes] = {}
                for line in _read_member(tar, member).splitlines():
                    if line:
                        doc = json.loads(line)
                        rows[doc["key"]] = _unb64(doc["data_b64"])
                tier_data[tier_name] = rows

        for name in tier_data:
            if not target.tiers.has(name):
                raise BackupError(f"restore target has no tier {name!r}")

        for key in manifest.get("deleted", []):
            for tier in target.tiers.ordered():
                _erase(tier, key)
            target._drop_meta(key)
        for meta in metas:
            # Stale copies from the parent state (the object may have
            # moved tiers since) are erased before the new ones land.
            for tier in target.tiers.ordered():
                _erase(tier, meta.key)
            target._meta[meta.key] = meta
            target.persist_meta(meta)
        for name in sorted(tier_data):
            tier = target.tiers.get(name)
            service = tier.service
            for key in sorted(tier_data[name]):
                data = tier_data[name][key]
                service._data[key] = data
                service._used += len(data)
                tier._order[key] = None
        # Rebuild dedup deterministically over the surviving table.
        target._dedup.clear()
        for key in sorted(target._meta):
            meta = target._meta[key]
            if meta.checksum and meta.alias_of is None:
                target._dedup.setdefault(meta.checksum, key)

    def _replay(self, target, lo: int, hi: int) -> int:
        """Replay archived records with seq in (lo, hi] onto ``target``."""
        if hi <= lo:
            return 0
        missing = [s for s in range(lo + 1, hi + 1) if s not in self._wal]
        if missing:
            raise BackupError(
                f"archived WAL has a hole at seq {missing[0]} "
                f"(range {lo + 1}..{hi}) — point-in-time restore "
                f"would skip history"
            )
        dur = target.durability
        if dur is None:
            raise BackupError("restore target has no durability layer")
        ctx = RequestContext(target.clock)
        redo = {
            "write": dur._redo_write,
            "remove": dur._redo_remove,
            "rewrite": dur._redo_rewrite,
            "delete": dur._redo_delete,
        }
        replayed = 0
        dur.recovering = True
        try:
            for seq in range(lo + 1, hi + 1):
                entry = self._wal[seq]
                handler = redo.get(str(entry["op"]))
                if handler is None:
                    continue  # scope / noop marker
                handler(entry["record"], ctx)
                replayed += 1
        finally:
            dur.recovering = False
        return replayed

    def _resolve_target_seq(
        self, to_seq: Optional[int], to_time: Optional[float],
        snapshot_id: Optional[int],
    ) -> Tuple[Dict[str, object], Optional[int]]:
        """Pick ``(base snapshot entry, replay-to seq or None)``."""
        active = self._active_snapshots()
        if not active:
            raise BackupError("no snapshots in the backup store")
        if snapshot_id is not None:
            return self._entry(snapshot_id), None
        if to_time is not None:
            seqs = [
                int(e["seq"]) for e in self._wal.values()
                if float(e["time"]) <= to_time
            ]
            candidates = [
                e for e in active if float(e["created_at"]) <= to_time
            ]
            if seqs:
                to_seq = max(seqs)
            elif candidates:
                return candidates[-1], None
            else:
                raise BackupError(
                    f"no archived history at or before t={to_time}"
                )
        if to_seq is None:
            base = active[-1]
            return base, self.last_seq
        if to_seq > self.last_seq:
            raise BackupError(
                f"seq {to_seq} is beyond the archived history "
                f"(last archived seq is {self.last_seq})"
            )
        bases = [e for e in active if int(e["upto_seq"]) <= to_seq]
        if not bases:
            oldest = active[0]
            raise BackupError(
                f"seq {to_seq} predates the oldest snapshot "
                f"(#{oldest['id']} at seq {oldest['upto_seq']}); that "
                f"history is no longer restorable"
            )
        return bases[-1], int(to_seq)

    def restore(
        self,
        to_seq: Optional[int] = None,
        to_time: Optional[float] = None,
        snapshot_id: Optional[int] = None,
        instance=None,
    ) -> Dict[str, object]:
        """Point-in-time restore.

        At most one of ``to_seq`` / ``to_time`` / ``snapshot_id``; with
        none, restores to the end of archived history.  ``instance``
        defaults to the live one — restoring *in place* truncates the
        WAL beyond the target and retires snapshots taken after it (the
        abandoned timeline stays on disk but is no longer a restore
        base), exactly like a database PITR starting a new timeline.
        """
        if sum(x is not None for x in (to_seq, to_time, snapshot_id)) > 1:
            raise BackupError(
                "restore takes at most one of to_seq / to_time / snapshot_id"
            )
        base, target_seq = self._resolve_target_seq(
            to_seq, to_time, snapshot_id
        )
        if base.get("retired"):
            raise BackupError(
                f"snapshot #{base['id']} is on an abandoned timeline"
            )
        target = instance if instance is not None else self.instance
        in_place = target is self.instance
        chain = self._chain(base)

        hooks = None
        if in_place:
            # The restore itself must not archive journal noise or
            # dirty the change tracker; detach, restore, re-derive.
            journal = target.durability.journal
            hooks = (journal.archiver, target.on_meta_change)
            journal.archiver = None
            target.on_meta_change = None
        try:
            self._apply_chain(target, chain)
            replayed = 0
            if target_seq is not None:
                replayed = self._replay(
                    target, int(base["upto_seq"]), target_seq
                )
        finally:
            if hooks is not None:
                target.durability.journal.archiver = hooks[0]
                target.on_meta_change = hooks[1]

        end_seq = (
            target_seq if target_seq is not None else int(base["upto_seq"])
        )
        if in_place:
            self._truncate_after(end_seq)
            self._dirty = {
                str(e["record"].get("key", ""))
                for s, e in self._wal.items()
                if s > int(base["upto_seq"]) and e["op"] in _REPLAYABLE
            }
            self._dirty.discard("")
            journal = target.durability.journal
            journal._next_seq = max(journal._next_seq, end_seq + 1)
        result = {
            "instance": target.name,
            "base_snapshot": int(base["id"]),
            "chain": [int(e["id"]) for e in chain],
            "to_seq": end_seq,
            "replayed": replayed,
            "state_digest": target.state_digest(),
            "durable_digest": target.state_digest(durable_only=True),
            "in_place": in_place,
        }
        self._restore_counter.inc()
        self._audit("restore", detail={
            "base": result["base_snapshot"], "to_seq": end_seq,
            "replayed": replayed, "in_place": in_place,
        })
        return result

    def _truncate_after(self, end_seq: int) -> None:
        """Abandon history beyond ``end_seq``: the restored state is the
        new timeline, and future writes re-number from there."""
        dropped = [s for s in self._wal if s > end_seq]
        for seq in dropped:
            del self._wal[seq]
        self._last_seq = end_seq
        retired = 0
        for entry in self.snapshots:
            if int(entry["upto_seq"]) > end_seq and not entry.get("retired"):
                entry["retired"] = True
                retired += 1
        self._rewrite_wal()
        if retired:
            self._save_catalog()
        # The journal may sit mid-sequence above the cut; realign so
        # the next record continues the new timeline densely.
        journal = self.instance.durability.journal
        if not journal._pending:
            journal._next_seq = end_seq + 1

    # -- retention ----------------------------------------------------------

    def prune(
        self,
        keep_last: Optional[int] = None,
        keep_window: Optional[float] = None,
    ) -> Dict[str, object]:
        """Apply retention policy; returns what happened.

        ``keep_last`` keeps the N newest active snapshots;
        ``keep_window`` keeps everything created in the last W virtual
        seconds.  A snapshot survives if *either* rule keeps it.  Never
        removed, regardless of policy: immutable snapshots (the attempt
        is a recorded policy violation), the newest active full, and
        any full/incremental a surviving snapshot's chain depends on.
        Retired (abandoned-timeline) snapshots are always discarded
        unless immutable.
        """
        now = self.instance.clock.now()
        active = self._active_snapshots()
        doomed_ids = set()
        if keep_last is not None:
            for entry in active[:max(0, len(active) - max(0, int(keep_last)))]:
                doomed_ids.add(int(entry["id"]))
        if keep_window is not None:
            for entry in active:
                if float(entry["created_at"]) < now - float(keep_window):
                    doomed_ids.add(int(entry["id"]))
        if keep_last is not None or keep_window is not None:
            # A snapshot either rule keeps survives both.
            for entry in active:
                eid = int(entry["id"])
                kept_by_last = (
                    keep_last is not None
                    and entry in active[len(active) - max(0, int(keep_last)):]
                )
                kept_by_window = (
                    keep_window is not None
                    and float(entry["created_at"]) >= now - float(keep_window)
                )
                if kept_by_last or kept_by_window:
                    doomed_ids.discard(eid)
        for entry in self.snapshots:
            if entry.get("retired"):
                doomed_ids.add(int(entry["id"]))

        protected: List[Dict[str, object]] = []
        violations = 0
        # Chains of surviving actives must stay whole.
        required = set()
        survivors = [
            e for e in self._active_snapshots()
            if int(e["id"]) not in doomed_ids
        ]
        for entry in survivors:
            for link in self._chain(entry):
                required.add(int(link["id"]))
        # The newest active full is the anchor of everything after it.
        fulls = [e for e in self._active_snapshots() if e["kind"] == "full"]
        if fulls:
            required.add(int(fulls[-1]["id"]))

        removed: List[int] = []
        for entry in list(self.snapshots):
            eid = int(entry["id"])
            if eid not in doomed_ids:
                continue
            if entry.get("immutable"):
                violations += 1
                self._violation_counter.inc()
                self._audit(
                    "immutable-violation",
                    error="retention attempted to delete an immutable snapshot",
                    detail={"id": eid, "kind": entry["kind"]},
                )
                continue
            if eid in required:
                protected.append({"id": eid, "reason": "chain-dependency"})
                continue
            path = os.path.join(self._snapshot_dir, str(entry["file"]))
            if os.path.exists(path):
                os.remove(path)
            self.snapshots.remove(entry)
            removed.append(eid)
        if removed:
            self._save_catalog()
            self._prune_counter.inc(len(removed))

        # History before the oldest remaining active base is
        # unrestorable anyway; let the WAL go with it.
        wal_dropped = 0
        active = self._active_snapshots()
        if active and removed:
            cutoff = min(int(e["upto_seq"]) for e in active)
            doomed_seqs = [s for s in self._wal if s <= cutoff]
            for seq in doomed_seqs:
                del self._wal[seq]
            wal_dropped = len(doomed_seqs)
            if wal_dropped:
                self._rewrite_wal()
        report = {
            "pruned": removed,
            "kept": [int(e["id"]) for e in self.snapshots],
            "protected": protected,
            "violations": violations,
            "wal_dropped": wal_dropped,
        }
        self._audit("prune", detail={
            "pruned": len(removed), "violations": violations,
            "wal_dropped": wal_dropped,
        })
        return report

    # -- scheduled recovery verification ------------------------------------

    def _scratch_instance(self):
        """A throwaway clone shell: same tier shapes, empty policy, its
        own cluster/clock/metrics so verification never perturbs the
        live instance or its timeline."""
        from repro.core.instance import TieraInstance
        from repro.core.policy import Policy
        from repro.simcloud.cluster import Cluster
        from repro.tiers.registry import TierRegistry

        products = {
            "memcached": "Memcached",
            "ebs": "EBS",
            "s3": "S3",
            "ephemeral": "EphemeralStorage",
        }
        cluster = Cluster(seed=2014)
        registry = TierRegistry(cluster)
        tiers = []
        for tier in self.instance.tiers.ordered():
            product = products.get(tier.kind)
            if product is None:
                raise BackupError(
                    f"cannot build a scratch {tier.kind!r} tier"
                )
            tiers.append(registry.create(
                product, tier_name=tier.name, size=tier.capacity
            ))
        scratch = TieraInstance(
            name=f"{self.instance.name}-verify",
            tiers=tiers,
            policy=Policy(),
            clock=cluster.clock,
        )
        scratch.eviction_chain.update(self.instance.eviction_chain)
        scratch.enable_durability(recover=False)
        return scratch

    def verify_restore(self) -> Dict[str, object]:
        """Restore the latest chain into a scratch instance and check it.

        The drill a real operator schedules: apply the chain, replay the
        WAL tail, compare the state digest, run fsck.  The result is
        persisted as ``last_verified_restore`` (surfaced in ``health()``)
        whether it passed or not — a failed drill is exactly the signal
        the schedule exists to raise.
        """
        now = self.instance.clock.now()
        result: Dict[str, object] = {
            "time": now, "ok": False, "snapshot": None, "to_seq": None,
            "replayed": 0, "digest_match": False, "fsck_clean": False,
            "findings": 0, "state_digest": "", "error": None,
        }
        scratch = None
        try:
            active = self._active_snapshots()
            if not active:
                raise BackupError("nothing to verify: no snapshots yet")
            tip = active[-1]
            chain = self._chain(tip)
            scratch = self._scratch_instance()
            # _apply_chain digest-checks the chain tip internally.
            self._apply_chain(scratch, chain)
            replayed = self._replay(
                scratch, int(tip["upto_seq"]), self.last_seq
            )
            scrub = fsck(scratch, repair=False)
            result.update({
                "ok": bool(scrub["clean"]),
                "snapshot": int(tip["id"]),
                "to_seq": self.last_seq,
                "replayed": replayed,
                "digest_match": True,
                "fsck_clean": bool(scrub["clean"]),
                "findings": int(scrub["counts"]["findings"]),
                "state_digest": scratch.state_digest(durable_only=True),
            })
        except BackupError as exc:
            result["error"] = str(exc)
        finally:
            if scratch is not None:
                scratch.shutdown()
        self.last_verified_restore = result
        _atomic_write(
            self._verify_path,
            json.dumps(result, indent=2, sort_keys=True).encode("utf-8"),
        )
        self._verify_counter.inc(ok=str(bool(result["ok"])).lower())
        self._audit(
            "verify",
            error=result["error"] if not result["ok"] else None,
            detail={
                "ok": result["ok"], "snapshot": result["snapshot"],
                "replayed": result["replayed"],
                "findings": result["findings"],
            },
        )
        return dict(result)

    # -- reporting ----------------------------------------------------------

    def health_summary(self) -> Dict[str, object]:
        """The backup-chain status block for ``health()`` / stats."""
        active = self._active_snapshots()
        last = active[-1] if active else None
        return {
            "snapshots": len(active),
            "full": sum(1 for e in active if e["kind"] == "full"),
            "incremental": sum(
                1 for e in active if e["kind"] == "incremental"
            ),
            "immutable": sum(1 for e in active if e.get("immutable")),
            "retired": sum(1 for e in self.snapshots if e.get("retired")),
            "last_snapshot": (
                {
                    "id": int(last["id"]),
                    "kind": last["kind"],
                    "upto_seq": int(last["upto_seq"]),
                    "created_at": last["created_at"],
                }
                if last is not None else None
            ),
            "wal": {
                "records": len(self._wal),
                "first_seq": min(self._wal) if self._wal else -1,
                "last_seq": self.last_seq,
            },
            "dirty_objects": len(self._dirty),
            "last_verified_restore": self.last_verified_restore,
        }

    def _audit(
        self, name: str, error: Optional[str] = None,
        detail: Optional[Dict[str, object]] = None,
    ) -> None:
        self.instance.obs.audit.append(AuditRecord(
            time=self.instance.clock.now(),
            category="backup",
            name=name,
            origin="backup",
            foreground=False,
            error=error,
            detail=detail or {},
        ))

    def close(self) -> None:
        """Detach from the instance's hooks (the store stays on disk)."""
        journal = self.instance.durability.journal
        if journal.archiver is self._archive_record:
            journal.archiver = None
        if self.instance.on_meta_change is self._note_meta_change:
            self.instance.on_meta_change = None
        self.instance.backup = None
