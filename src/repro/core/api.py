"""The unified ``StorageAPI`` façade surface.

Three façades move objects in and out of a Tiera instance: the in-process
:class:`~repro.core.server.TieraServer`, the consistent-hash
:class:`~repro.core.sharding.ShardedTieraServer` router, and the
socket-side :class:`~repro.rpc.client.TieraClient`.  Historically each
grew its own verb signatures and return shapes; this module defines the
one contract they all implement now:

* single-object verbs ``put_object`` / ``get_object`` / ``delete_object``
  with **keyword-only** options, returning a structured :class:`OpResult`
  envelope (latency, tier, checksum, stable error code) instead of a bare
  value — errors are *captured* in the envelope, not raised;
* batch verbs ``put_many`` / ``get_many`` / ``delete_many`` and the
  general ``execute_batch``, which run independent items concurrently in
  virtual time (see ``RequestContext.scatter``) and return a
  :class:`BatchResult` preserving submission order;
* :class:`AdmissionController` bounding in-flight operations — an
  over-limit batch is refused up front with ``BACKPRESSURE`` before any
  item runs.

The legacy positional verbs (``put``/``get``/``delete``) survive one
release as deprecation shims over these methods; see docs/API.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # Protocol is 3.8+; runtime_checkable keeps isinstance() working
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - very old pythons
    Protocol = object

    def runtime_checkable(cls):
        return cls

from repro.core.errors import PARTIAL_FAILURE

#: Operation names accepted in a batch.
PUT = "put"
GET = "get"
DELETE = "delete"
_OPS = (PUT, GET, DELETE)

#: Default number of concurrent lanes a batch executes across.
DEFAULT_PARALLELISM = 8

#: Default bound on in-flight operations before backpressure.
DEFAULT_MAX_INFLIGHT = 128


@dataclass
class BatchOp:
    """One operation in a batch: what to do, to which key, with what."""

    op: str
    key: str
    data: Optional[bytes] = None
    tags: Optional[List[str]] = None
    prefer: Optional[str] = None

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown batch op {self.op!r}")
        if self.op == PUT and self.data is None:
            raise ValueError(f"put of {self.key!r} carries no data")

    @classmethod
    def put(cls, key: str, data: bytes, *, tags: Optional[List[str]] = None
            ) -> "BatchOp":
        return cls(PUT, key, data=data, tags=tags)

    @classmethod
    def get(cls, key: str, *, prefer: Optional[str] = None) -> "BatchOp":
        return cls(GET, key, prefer=prefer)

    @classmethod
    def delete(cls, key: str) -> "BatchOp":
        return cls(DELETE, key)

    # -- wire form (RPC) -----------------------------------------------------

    def to_wire(self, encode_bytes) -> Dict[str, object]:
        wire: Dict[str, object] = {"op": self.op, "key": self.key}
        if self.data is not None:
            wire["data"] = encode_bytes(self.data)
        if self.tags is not None:
            wire["tags"] = list(self.tags)
        if self.prefer is not None:
            wire["prefer"] = self.prefer
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, object], decode_bytes) -> "BatchOp":
        data = wire.get("data")
        return cls(
            op=wire["op"],
            key=wire["key"],
            data=decode_bytes(data) if data is not None else None,
            tags=list(wire["tags"]) if wire.get("tags") is not None else None,
            prefer=wire.get("prefer"),
        )


@dataclass
class OpResult:
    """Structured outcome of one storage operation.

    Failure is data here, not control flow: a missing key yields an
    ``OpResult`` with ``ok=False`` and ``error="NO_SUCH_OBJECT"``.  The
    legacy shims call :meth:`raise_for_error` to recover the old raising
    behaviour.
    """

    op: str
    key: str
    ok: bool
    latency: float = 0.0
    #: tier(s) involved: the serving tier for a get, a comma-joined
    #: sorted list of stored-in tiers for a put, "" when not applicable.
    tier: str = ""
    checksum: str = ""
    size: int = 0
    #: stable error code (see repro.core.errors), None on success.
    error: Optional[str] = None
    error_message: str = ""
    #: exception class name, kept so RPC shims can re-raise faithfully.
    error_type: str = ""
    #: payload bytes for a successful get; None otherwise.
    value: Optional[bytes] = None
    #: the captured exception object, when the op ran in-process.
    #: Excluded from equality so direct and RPC façades compare equal.
    exception: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )

    def raise_for_error(self) -> "OpResult":
        """Re-raise the captured failure (no-op on success)."""
        if self.ok:
            return self
        if self.exception is not None:
            raise self.exception
        raise RuntimeError(
            f"{self.op} {self.key!r} failed: "
            f"[{self.error}] {self.error_message}"
        )

    # -- wire form (RPC) -----------------------------------------------------

    def to_wire(self, encode_bytes) -> Dict[str, object]:
        wire: Dict[str, object] = {
            "op": self.op,
            "key": self.key,
            "ok": self.ok,
            "latency": self.latency,
            "tier": self.tier,
            "checksum": self.checksum,
            "size": self.size,
        }
        if not self.ok:
            wire["error"] = self.error
            wire["error_message"] = self.error_message
            wire["error_type"] = self.error_type
        if self.value is not None:
            wire["value"] = encode_bytes(self.value)
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, object], decode_bytes) -> "OpResult":
        value = wire.get("value")
        return cls(
            op=wire["op"],
            key=wire["key"],
            ok=wire["ok"],
            latency=wire.get("latency", 0.0),
            tier=wire.get("tier", ""),
            checksum=wire.get("checksum", ""),
            size=wire.get("size", 0),
            error=wire.get("error"),
            error_message=wire.get("error_message", ""),
            error_type=wire.get("error_type", ""),
            value=decode_bytes(value) if value is not None else None,
        )


@dataclass
class BatchResult:
    """Outcome of a batch: per-item results in submission order.

    A batch never raises for item-level failures; ``code`` is
    ``PARTIAL_FAILURE`` when any item failed and ``None`` when all
    succeeded.  ``latency`` is the whole batch's virtual-time span —
    the max over item completion times, not their sum.
    """

    results: List[OpResult]
    latency: float = 0.0
    parallelism: int = 1

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def code(self) -> Optional[str]:
        return None if self.ok else PARTIAL_FAILURE

    @property
    def failures(self) -> List[OpResult]:
        return [r for r in self.results if not r.ok]

    def values(self) -> List[Optional[bytes]]:
        """Payloads in submission order (None for non-gets/failures)."""
        return [r.value for r in self.results]

    def raise_for_error(self) -> "BatchResult":
        for result in self.results:
            result.raise_for_error()
        return self

    def __iter__(self):
        return iter(self.results)

    def __len__(self):
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]


class AdmissionController:
    """Bounds in-flight operations; refuses overload with backpressure.

    The bound is over *operations*, not batches: one 32-item batch
    admits 32.  A request that would exceed the limit is rejected whole
    — partial admission would break batch ordering guarantees — with a
    :class:`~repro.core.errors.BackpressureError` (code ``BACKPRESSURE``)
    raised before any virtual time is spent.
    """

    def __init__(self, max_inflight: int = DEFAULT_MAX_INFLIGHT):
        if max_inflight < 1:
            raise ValueError("admission limit must be at least 1")
        self.max_inflight = max_inflight
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0

    def acquire(self, count: int = 1) -> None:
        from repro.core.errors import BackpressureError

        if count > self.max_inflight - self.inflight:
            self.rejected += count
            raise BackpressureError(
                requested=count,
                inflight=self.inflight,
                limit=self.max_inflight,
            )
        self.inflight += count
        self.admitted += count

    def release(self, count: int = 1) -> None:
        self.inflight = max(0, self.inflight - count)


@runtime_checkable
class StorageAPI(Protocol):
    """The verb set every Tiera façade implements.

    All options are keyword-only; all outcomes are envelopes.  Single
    ops return :class:`OpResult`; batch verbs return
    :class:`BatchResult` in submission order.
    """

    def put_object(self, key: str, data: bytes, *,
                   tags: Optional[List[str]] = None) -> OpResult: ...

    def get_object(self, key: str, *,
                   prefer: Optional[str] = None) -> OpResult: ...

    def delete_object(self, key: str) -> OpResult: ...

    def execute_batch(self, ops: Sequence[BatchOp], *,
                      parallelism: int = DEFAULT_PARALLELISM) -> BatchResult: ...

    def put_many(self, items: Iterable[Tuple[str, bytes]], *,
                 tags: Optional[List[str]] = None,
                 parallelism: int = DEFAULT_PARALLELISM) -> BatchResult: ...

    def get_many(self, keys: Iterable[str], *,
                 parallelism: int = DEFAULT_PARALLELISM) -> BatchResult: ...

    def delete_many(self, keys: Iterable[str], *,
                    parallelism: int = DEFAULT_PARALLELISM) -> BatchResult: ...

    def contains(self, key: str) -> bool: ...


@dataclass
class ManagementResult:
    """Envelope for the unified management surface.

    ``configure(feature, **options)`` and ``feature_status(feature)``
    return this from every façade — direct, sharded, and RPC — so the
    admin plane has the same stable shape as the data plane.  Errors
    are *captured*, never raised: an unknown feature comes back with
    ``error == "UNKNOWN_FEATURE"``, refused options with
    ``error == "BAD_CONFIG"``.  ``state`` is a JSON-clean dict (no
    tuples, no bytes) so the RPC round-trip is the identity.
    """

    feature: str
    action: str                     # "configure" | "status"
    ok: bool = True
    enabled: bool = False
    state: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None     # stable code, e.g. UNKNOWN_FEATURE
    error_message: Optional[str] = None

    def raise_for_error(self) -> "ManagementResult":
        if not self.ok:
            from repro.core import errors

            exc_cls = {
                errors.UNKNOWN_FEATURE: errors.UnknownFeatureError,
                errors.BAD_CONFIG: errors.BadConfigError,
            }.get(self.error)
            if exc_cls is errors.UnknownFeatureError:
                raise exc_cls(self.feature)
            if exc_cls is errors.BadConfigError:
                raise exc_cls(self.feature, self.error_message or "")
            raise errors.TieraError(self.error_message or self.error or "")
        return self

    def to_wire(self) -> Dict[str, object]:
        return {
            "feature": self.feature,
            "action": self.action,
            "ok": self.ok,
            "enabled": self.enabled,
            "state": self.state,
            "error": self.error,
            "error_message": self.error_message,
        }

    @classmethod
    def from_wire(cls, doc: Dict[str, object]) -> "ManagementResult":
        return cls(
            feature=doc["feature"],
            action=doc["action"],
            ok=doc["ok"],
            enabled=doc["enabled"],
            state=doc.get("state") or {},
            error=doc.get("error"),
            error_message=doc.get("error_message"),
        )


@runtime_checkable
class ManagementAPI(Protocol):
    """The admin verb pair every Tiera façade implements.

    The legacy ``enable_*`` verbs grew ad hoc — present on some façades
    with divergent signatures and return shapes.  This protocol is the
    replacement: one keyword-only ``configure`` to turn a feature on or
    retune it, one ``feature_status`` to inspect it, both returning
    :class:`ManagementResult` envelopes with stable error codes.
    """

    def configure(self, feature: str, **options) -> ManagementResult: ...

    def feature_status(self, feature: str) -> ManagementResult: ...


def batch_from_verbs(
    op: str,
    items: Iterable,
    *,
    tags: Optional[List[str]] = None,
) -> List[BatchOp]:
    """Build the BatchOp list behind put_many/get_many/delete_many."""
    ops: List[BatchOp] = []
    if op == PUT:
        for key, data in items:
            ops.append(BatchOp.put(key, data, tags=tags))
    elif op == GET:
        for key in items:
            ops.append(BatchOp.get(key))
    elif op == DELETE:
        for key in items:
            ops.append(BatchOp.delete(key))
    else:  # pragma: no cover - callers pass module constants
        raise ValueError(f"unknown batch op {op!r}")
    return ops
