"""Benchmark-suite plumbing.

Every ``bench_figNN`` module reproduces one figure of the paper's
evaluation.  The experiment runs once inside ``benchmark.pedantic``
(so ``pytest benchmarks/ --benchmark-only`` measures each figure's
wall time), prints the same series the paper plots (through
``capsys.disabled()`` so it lands on the terminal), and writes it to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_configure(config):
    os.makedirs(RESULTS_DIR, exist_ok=True)


@pytest.fixture
def emit(capsys):
    """emit(name, table_text): print + persist one figure's table."""

    def _emit(name: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        with capsys.disabled():
            print("\n" + text)

    return _emit
