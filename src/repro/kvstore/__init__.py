"""Embedded persistent key-value store (the prototype's BerkeleyDB role).

The paper's Tiera server persists all object metadata in BerkeleyDB.
This package provides the stand-in: :class:`LogStore`, a log-structured
hash store (append-only data log + in-memory index) with checksummed
records, crash recovery that tolerates a torn tail, and compaction.
:class:`MemoryStore` offers the same interface without persistence for
tests and ephemeral instances.
"""

from repro.kvstore.store import KVStore, LogStore, MemoryStore
from repro.kvstore.record import CorruptRecordError

__all__ = ["CorruptRecordError", "KVStore", "LogStore", "MemoryStore"]
