"""Declarative SLOs over the virtual timeline, with burn-rate alerting.

An :class:`SloObjective` states what "healthy" means for one operation
family — "GET p99 ≤ 5 ms over a 60 s window", "PUT availability ≥
99.9 %" — and the :class:`SloEngine` continuously evaluates the
objectives from the same per-request stream the latency histograms
record (the server feeds every request completion in).  Everything is
measured in *virtual* time: windows slide on the simulated clock, so
same-seed runs produce byte-identical SLO state, breaches included.

Alerting follows the multi-window burn-rate recipe: each request that
violates the objective (too slow, or failed) consumes error budget;
the burn rate is the violating fraction divided by the budget
(``1 - target`` for availability, ``1 - percentile`` for latency).  An
objective *alerts* only when both the long window and the short window
burn faster than ``burn_threshold`` — the long window proves the
problem is real, the short window proves it is still happening.

Surfaces:

* ``tiera_slo_*`` metric families (burn rates, compliance gauges,
  breach transition counters),
* audit records (category ``slo``) on every alert transition,
* ``TieraServer.health()["slo"]`` and the RPC ``slo`` verb,
* the spec-language condition primitive ``slo.<name>.<attr>`` (see
  :mod:`repro.core.conditions`), so policy rules can react to burn —
  e.g. ``event(slo.get_latency.burning) : response { grow(...) }``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.audit import AuditRecord

#: How often (virtual seconds) the engine re-evaluates objectives while
#: samples stream in.  Evaluation also happens on demand (health, RPC).
DEFAULT_EVAL_INTERVAL = 1.0


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over an operation family.

    ``kind`` is ``"latency"`` (compliant while the windowed
    ``percentile`` stays at or under ``target`` seconds) or
    ``"availability"`` (compliant while the windowed success fraction
    stays at or above ``target``).  ``op`` narrows to one operation
    family (``get``/``put``/``delete``) or ``"*"`` for all.
    """

    name: str
    op: str
    kind: str
    target: float
    percentile: float = 0.99
    window: float = 60.0
    short_window: float = 5.0
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "availability" and not 0.0 < self.target < 1.0:
            raise ValueError("availability target must be in (0, 1)")
        if self.kind == "latency" and not 0.0 < self.percentile < 1.0:
            raise ValueError("latency percentile must be in (0, 1)")
        if self.window <= 0 or self.short_window <= 0:
            raise ValueError("SLO windows must be positive")
        if self.short_window > self.window:
            raise ValueError("short window cannot exceed the long window")

    @property
    def budget(self) -> float:
        """Allowed violating fraction: the error budget per window."""
        if self.kind == "availability":
            return 1.0 - self.target
        return 1.0 - self.percentile

    def violates(self, latency: float, ok: bool) -> bool:
        """Does one request consume error budget under this objective?"""
        if not ok:
            return True
        return self.kind == "latency" and latency > self.target

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "op": self.op,
            "kind": self.kind,
            "target": self.target,
            "percentile": self.percentile,
            "window": self.window,
            "short_window": self.short_window,
            "burn_threshold": self.burn_threshold,
        }


def default_slos() -> List[SloObjective]:
    """The canned objectives the chaos harness (and docs) install.

    Tight enough that injected faults breach them, loose enough that a
    healthy write-through instance never does.
    """
    return [
        SloObjective(
            name="get_availability", op="get", kind="availability",
            target=0.999, window=30.0, short_window=5.0,
        ),
        SloObjective(
            name="put_availability", op="put", kind="availability",
            target=0.999, window=30.0, short_window=5.0,
        ),
        SloObjective(
            name="get_latency", op="get", kind="latency",
            target=0.25, percentile=0.99, window=30.0, short_window=5.0,
        ),
        SloObjective(
            name="put_latency", op="put", kind="latency",
            target=0.5, percentile=0.99, window=30.0, short_window=5.0,
        ),
    ]


@dataclass
class _ObjectiveState:
    """Mutable evaluation state for one installed objective."""

    objective: SloObjective
    #: (completion time, latency, ok) — pruned to the long window
    samples: Deque[Tuple[float, float, bool]] = field(default_factory=deque)
    alerting: bool = False
    compliant: bool = True
    burn_rate: float = 0.0
    burn_rate_short: float = 0.0
    current: float = 0.0
    breaches: int = 0

    def prune(self, now: float) -> None:
        horizon = now - self.objective.window
        samples = self.samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.objective.name,
            "op": self.objective.op,
            "kind": self.objective.kind,
            "target": self.objective.target,
            "current": round(self.current, 6),
            "compliant": self.compliant,
            "burn_rate": round(self.burn_rate, 6),
            "burn_rate_short": round(self.burn_rate_short, 6),
            "alerting": self.alerting,
            "breaches": self.breaches,
            "samples": len(self.samples),
        }


class SloEngine:
    """Evaluates installed objectives from the live request stream.

    The engine is part of the observability hub; it is inert (and
    free) until :meth:`install` gives it objectives.  ``record`` is
    called by the serving layer on every request completion with the
    request's *virtual* completion time — recording never advances
    virtual time, keeping the Figure 18 observer-effect rule.
    """

    def __init__(self, metrics, audit, clock=None,
                 eval_interval: float = DEFAULT_EVAL_INTERVAL):
        self._metrics = metrics
        self._audit = audit
        self._clock = clock
        self.eval_interval = eval_interval
        self._states: Dict[str, _ObjectiveState] = {}
        self._next_eval: Optional[float] = None
        self._last_seen = 0.0
        self._burn_gauge = None
        self._compliant_gauge = None
        self._alerting_gauge = None
        self._breaches = None
        #: alert transitions, oldest first — survives audit-ring churn
        #: (a busy run's rule records would evict the breach otherwise).
        self.transitions: Deque[Dict[str, object]] = deque(maxlen=256)

    # -- configuration -------------------------------------------------------

    @property
    def objectives(self) -> List[SloObjective]:
        return [state.objective for state in self._states.values()]

    def install(self, objectives) -> None:
        """Install (or add) objectives; names must be unique."""
        for objective in objectives:
            if objective.name in self._states:
                raise ValueError(f"SLO {objective.name!r} already installed")
            self._states[objective.name] = _ObjectiveState(objective)
        if self._states and self._burn_gauge is None:
            self._burn_gauge = self._metrics.gauge(
                "tiera_slo_burn_rate",
                "Error-budget burn rate per SLO and window.",
            )
            self._compliant_gauge = self._metrics.gauge(
                "tiera_slo_compliant",
                "1 while the SLO's windowed objective holds, else 0.",
            )
            self._alerting_gauge = self._metrics.gauge(
                "tiera_slo_alerting",
                "1 while the SLO's multi-window burn alert is firing.",
            )
            self._breaches = self._metrics.counter(
                "tiera_slo_breaches_total",
                "Alert transitions (ok -> breaching) per SLO.",
            )

    def clear(self) -> None:
        self._states.clear()
        self._next_eval = None

    def has(self, name: str) -> bool:
        return name in self._states

    # -- the data path -------------------------------------------------------

    def record(self, op: str, latency: float, ok: bool, at: float) -> None:
        """Feed one request completion (virtual time ``at``)."""
        if not self._states:
            return
        self._last_seen = max(self._last_seen, at)
        for state in self._states.values():
            objective = state.objective
            if objective.op != "*" and objective.op != op:
                continue
            state.samples.append((at, latency, ok))
        if self._next_eval is None:
            self._next_eval = at + self.eval_interval
        elif at >= self._next_eval:
            self.evaluate(at)

    # -- evaluation ----------------------------------------------------------

    def _now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        if self._clock is not None:
            return max(self._clock.now(), self._last_seen)
        return self._last_seen

    def evaluate(self, now: Optional[float] = None) -> List[Dict[str, object]]:
        """Re-evaluate every objective at virtual instant ``now``.

        Updates the ``tiera_slo_*`` gauges, appends an audit record on
        every alert transition, and returns the per-objective states.
        All inputs are virtual-time; same-seed runs evaluate (and
        transition) identically.
        """
        now = self._now(now)
        self._next_eval = now + self.eval_interval
        out = []
        for name in sorted(self._states):
            state = self._states[name]
            objective = state.objective
            state.prune(now)
            samples = state.samples
            total = len(samples)
            bad = sum(
                1 for _, latency, ok in samples
                if objective.violates(latency, ok)
            )
            short_horizon = now - objective.short_window
            short_total = short_bad = 0
            for at, latency, ok in reversed(samples):
                if at < short_horizon:
                    break
                short_total += 1
                if objective.violates(latency, ok):
                    short_bad += 1
            budget = objective.budget
            state.burn_rate = (bad / total / budget) if total else 0.0
            state.burn_rate_short = (
                (short_bad / short_total / budget) if short_total else 0.0
            )
            if objective.kind == "availability":
                state.current = (total - bad) / total if total else 1.0
                state.compliant = state.current >= objective.target
            else:
                state.current = _windowed_percentile(
                    samples, objective.percentile
                )
                state.compliant = state.current <= objective.target
            alerting = (
                state.burn_rate > objective.burn_threshold
                and state.burn_rate_short > objective.burn_threshold
            )
            if alerting != state.alerting:
                self._transition(state, now, alerting)
            state.alerting = alerting
            self._export(state)
            out.append(state.to_dict())
        return out

    def _transition(self, state: _ObjectiveState, now: float,
                    alerting: bool) -> None:
        objective = state.objective
        if alerting:
            state.breaches += 1
            if self._breaches is not None:
                self._breaches.inc(slo=objective.name)
        self.transitions.append(
            {
                "time": round(now, 6),
                "name": objective.name,
                "alerting": alerting,
                "burn_rate": round(state.burn_rate, 6),
                "burn_rate_short": round(state.burn_rate_short, 6),
            }
        )
        self._audit.append(
            AuditRecord(
                time=now,
                category="slo",
                name=objective.name,
                origin="burn-rate",
                foreground=False,
                error=(
                    f"SLO breach: burn {state.burn_rate:.2f}x "
                    f"(short {state.burn_rate_short:.2f}x) over budget"
                    if alerting else None
                ),
                detail={
                    "alerting": alerting,
                    "burn_rate": round(state.burn_rate, 6),
                    "burn_rate_short": round(state.burn_rate_short, 6),
                    "current": round(state.current, 6),
                    "target": objective.target,
                    "kind": objective.kind,
                },
            )
        )

    def _export(self, state: _ObjectiveState) -> None:
        if self._burn_gauge is None:
            return
        name = state.objective.name
        self._burn_gauge.set(state.burn_rate, slo=name, window="long")
        self._burn_gauge.set(state.burn_rate_short, slo=name, window="short")
        self._compliant_gauge.set(1.0 if state.compliant else 0.0, slo=name)
        self._alerting_gauge.set(1.0 if state.alerting else 0.0, slo=name)

    # -- queries -------------------------------------------------------------

    def state(self, name: str, now: Optional[float] = None) -> Dict[str, object]:
        """Current evaluated state of one objective (for conditions)."""
        if name not in self._states:
            raise KeyError(f"no SLO named {name!r}")
        self.evaluate(now)
        return self._states[name].to_dict()

    def summary(self, now: Optional[float] = None) -> Dict[str, object]:
        """Everything health()/RPC/chaos reports attach."""
        states = self.evaluate(now)
        return {
            "objectives": states,
            "breaching": [s["name"] for s in states if not s["compliant"]],
            "alerting": [s["name"] for s in states if s["alerting"]],
        }

def _windowed_percentile(samples, percentile: float) -> float:
    """Nearest-rank percentile of the windowed latency samples.

    Failed requests count at ``+inf`` — an errored GET is not evidence
    of good latency — but an all-good empty window reports 0.
    """
    if not samples:
        return 0.0
    data = sorted(
        latency if ok else float("inf") for _, latency, ok in samples
    )
    rank = int(percentile * len(data))
    if rank < percentile * len(data):
        rank += 1
    rank = max(1, min(len(data), rank))
    value = data[rank - 1]
    return value if value != float("inf") else max(
        (lat for _, lat, _ok in samples), default=0.0
    ) + 1.0
