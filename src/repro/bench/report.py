"""Plain-text tables matching the paper's figures.

Each benchmark prints the series a figure plots — x values down the
side, one column per line in the plot — so paper-vs-measured comparison
is a side-by-side read.  EXPERIMENTS.md records both.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """A fixed-width table with a title rule, ready to print."""
    rendered: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def ms(seconds: float) -> float:
    """Seconds → milliseconds (for latency columns)."""
    return seconds * 1000.0


def tier_breakdown_rows(
    label: str, report: Optional[dict]
) -> List[List[object]]:
    """Rows for a per-tier breakdown table from ``RunResult.tier_report``.

    One row per service: operation counts, simulated seconds its
    operations charged (the per-tier latency contribution), and — where
    the service backed a tier that answered GETs — that tier's share of
    served reads.
    """
    if not report:
        return []
    served = report.get("gets_served", {})
    total_served = sum(served.values())
    rows: List[List[object]] = []
    for service in sorted(set(report.get("ops", {})) | set(report.get("seconds", {}))):
        ops = report.get("ops", {}).get(service, {})
        rows.append(
            [
                label,
                service,
                int(ops.get("get", 0)),
                int(ops.get("put", 0)),
                int(ops.get("miss", 0) + ops.get("delete", 0)),
                round(report.get("seconds", {}).get(service, 0.0), 3),
            ]
        )
    for tier, count in sorted(served.items()):
        rows.append(
            [
                label,
                f"{tier} (GETs served)",
                int(count),
                "",
                "",
                f"{count / total_served:.0%}" if total_served else "",
            ]
        )
    cache = report.get("cache", {})
    if cache:
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        rate = hits / (hits + misses) if hits + misses else 0.0
        rows.append(
            [label, "page-cache", int(hits), int(misses), "", f"{rate:.0%}"]
        )
    return rows


TIER_BREAKDOWN_HEADERS = (
    "deployment", "service/tier", "get", "put", "other", "sim-seconds/share"
)
