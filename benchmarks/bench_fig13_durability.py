"""Figure 13 / Table 3: durability vs performance vs cost.

Paper setup: two instances — High Durability (Memcached + immediate
EBS backup + 2-minute S3 pushes) and Low Durability (Memcached +
2-minute S3 pushes only) — under a YCSB 50/50 read/write uniform
workload of 4 KB records.

Paper result: High Durability pays higher write latency and monthly
cost for a near-zero loss window; Low Durability gets the best write
latency but can lose up to the last 2 minutes of updates.

The kill-and-restart variant makes the loss window *observable*: write
a batch, crash the process inside the S3 push window (volatile
Memcached state lost), reopen over the surviving metadata store, and
count which objects still serve their bytes.  High Durability's
synchronous EBS copy survives everything; Low Durability loses the
whole un-pushed window — Table 3's trade-off, measured instead of
asserted.
"""

from __future__ import annotations

import hashlib

from repro.bench.report import format_table, ms
from repro.bench.runner import run_closed_loop
from repro.core.server import TieraServer
from repro.core.templates import high_durability_instance, low_durability_instance
from repro.simcloud.cluster import Cluster
from repro.simcloud.resources import RequestContext
from repro.tiers.registry import TierRegistry
from repro.workloads.ycsb import mixed_50_50

RECORDS = 1_000      # 4 KB each → ~4 MB, within the 100 MB tiers
CLIENTS = 8
DURATION = 30.0
WARMUP = 8.0
PUSH_INTERVAL = 120.0


def _measure(builder, seed):
    cluster = Cluster(seed=seed)
    registry = TierRegistry(cluster)
    instance = builder(registry)
    server = TieraServer(instance)
    workload = mixed_50_50(server, RECORDS, seed=3)
    ctx = RequestContext(cluster.clock)
    workload.load(ctx=ctx)
    cluster.clock.run_until(ctx.time)
    result = run_closed_loop(
        cluster.clock, clients=CLIENTS, duration=DURATION,
        op_fn=workload, warmup=WARMUP,
    )
    return instance, result


def run_figure13():
    rows = []
    for name, builder, loss_window in (
        (
            "High Durability",
            lambda reg: high_durability_instance(
                reg, mem="100M", ebs="100M", push_interval=PUSH_INTERVAL
            ),
            "~0 s (synchronous EBS)",
        ),
        (
            "Low Durability",
            lambda reg: low_durability_instance(
                reg, mem="100M", push_interval=PUSH_INTERVAL
            ),
            f"{PUSH_INTERVAL:.0f} s (S3 push window)",
        ),
    ):
        instance, result = _measure(builder, seed=hash(name) % 1000)
        rows.append(
            [
                name,
                round(ms(result.latencies.mean("read")), 2),
                round(ms(result.latencies.mean("write")), 2),
                round(instance.monthly_cost(), 2),
                loss_window,
            ]
        )
    return rows


KILL_OBJECTS = 64
KILL_ADVANCE = 30.0   # crash inside the 120 s S3 push window


def _kill_payload(key: str) -> bytes:
    stamp = hashlib.sha256(key.encode()).digest()
    return (stamp * 128)[:4096]


def _kill_restart(builder, seed):
    """PUT a batch, crash inside the push window, reopen, count survivors."""
    from repro.core.durability import reopen_instance, simulate_crash

    cluster = Cluster(seed=seed)
    registry = TierRegistry(cluster)
    instance = builder(registry)
    instance.enable_durability()
    server = TieraServer(instance)
    keys = [f"rec{i:04d}" for i in range(KILL_OBJECTS)]
    for key in keys:
        ctx = RequestContext(cluster.clock)
        server.put(key, _kill_payload(key), ctx=ctx)
        cluster.clock.run_until(ctx.time)
    cluster.clock.run_until(cluster.clock.now() + KILL_ADVANCE)
    simulate_crash(instance)
    successor, recovery = reopen_instance(
        name=instance.name,
        tiers=list(instance.tiers.ordered()),
        policy=instance.policy,
        clock=cluster.clock,
        metadata_store=instance.metadata_store,
        eviction_chain=dict(instance.eviction_chain),
    )
    reopened = TieraServer(successor)
    survived = sum(
        1 for key in keys
        if reopened.contains(key)
        and reopened.get(key, ctx=RequestContext(cluster.clock)) == _kill_payload(key)
    )
    successor.control.shutdown()
    successor.obs.metrics.remove_collector(successor._collect_gauges)
    return survived, recovery


def run_kill_restart():
    rows = []
    for name, builder in (
        (
            "High Durability",
            lambda reg: high_durability_instance(
                reg, mem="100M", ebs="100M", push_interval=PUSH_INTERVAL
            ),
        ),
        (
            "Low Durability",
            lambda reg: low_durability_instance(
                reg, mem="100M", push_interval=PUSH_INTERVAL
            ),
        ),
    ):
        survived, recovery = _kill_restart(builder, seed=hash(name) % 1000)
        rows.append([
            name,
            KILL_OBJECTS,
            survived,
            KILL_OBJECTS - survived,
            recovery["fsck"]["counts"]["findings"],
        ])
    return rows


def test_fig13_durability(benchmark, emit):
    table = {}

    def experiment():
        table["rows"] = run_figure13()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Figure 13 / Table 3 — latency, cost, and worst-case loss window",
        ["instance", "read (ms)", "write (ms)", "cost $/mo", "loss window"],
        table["rows"],
        note=(
            "Paper: High Durability has higher write latency and cost; "
            "Low Durability trades a 2-minute loss window for the best "
            "write latency.  Reads are Memcached-served in both."
        ),
    )
    emit("fig13_durability", text)
    high, low = table["rows"]
    assert high[2] > low[2]      # high durability writes slower
    assert high[3] > low[3]      # and costs more
    # Reads come from Memcached in both: same order of magnitude.
    assert high[1] < 5.0 and low[1] < 5.0


def test_fig13_kill_restart(benchmark, emit):
    table = {}

    def experiment():
        table["rows"] = run_kill_restart()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Figure 13 (kill-and-restart) — objects surviving a crash inside "
        "the S3 push window",
        ["instance", "acked", "survived", "lost", "recovery repairs"],
        table["rows"],
        note=(
            "Process killed 30 s after the last PUT (push interval 120 s): "
            "Memcached state is lost, the metadata store survives, and "
            "recovery replays the journal then scrubs.  High Durability's "
            "synchronous EBS copy keeps every acked object; Low Durability "
            "loses the entire un-pushed window — Table 3's loss window, "
            "observed."
        ),
    )
    emit("fig13_kill_restart", text)
    high, low = table["rows"]
    assert high[2] == KILL_OBJECTS          # synchronous EBS: all survive
    assert low[2] == 0                      # whole un-pushed window lost
    assert low[3] == KILL_OBJECTS
