"""Write-ahead journal: minidb's redo log (MySQL's ib_logfile role).

Commit protocol: a transaction's redo records are buffered in the open
journal file and forced (fsync) with the COMMIT record — so commit
latency is exactly one journal write to whatever tier the policy sends
it to.  This is the behaviour behind the paper's §4.1.1 observation that
"even in a purely read-only transactional workload MySQL performs
writes to its journal": minidb likewise journals a BEGIN/COMMIT pair
for read-only transactions (it is how MySQL's binlog/metadata writes
show up on EBS), controlled by ``journal_readonly``.

Recovery replays committed transactions' after-images in order; torn
tails (crash mid-append) are detected by record checksums and dropped.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fs.filesystem import TieraFileSystem
from repro.simcloud.resources import RequestContext

BEGIN = 1
UPDATE = 2  # also covers insert (before=None) and delete (after=None)
COMMIT = 3
CHECKPOINT = 4

_HEAD = struct.Struct("<IBI")  # crc, type, payload length
_TXN = struct.Struct("<Q")


@dataclass
class JournalRecord:
    kind: int
    txn_id: int
    table: str = ""
    key: int = 0
    before: Optional[bytes] = None
    after: Optional[bytes] = None


def _encode_optional(blob: Optional[bytes]) -> bytes:
    if blob is None:
        return struct.pack("<i", -1)
    return struct.pack("<i", len(blob)) + blob


def _decode_optional(buf: bytes, offset: int) -> Tuple[Optional[bytes], int]:
    (length,) = struct.unpack_from("<i", buf, offset)
    offset += 4
    if length < 0:
        return None, offset
    return buf[offset : offset + length], offset + length


def encode_record(record: JournalRecord) -> bytes:
    payload = bytearray(_TXN.pack(record.txn_id))
    if record.kind == UPDATE:
        table_bytes = record.table.encode("utf-8")
        payload += struct.pack("<H", len(table_bytes)) + table_bytes
        payload += struct.pack("<q", record.key)
        payload += _encode_optional(record.before)
        payload += _encode_optional(record.after)
    crc = zlib.crc32(bytes([record.kind]) + payload) & 0xFFFFFFFF
    return _HEAD.pack(crc, record.kind, len(payload)) + payload


def decode_record(buf: bytes, offset: int) -> Tuple[Optional[JournalRecord], int]:
    """Returns (record, next_offset); (None, offset) on a torn/bad tail."""
    if offset + _HEAD.size > len(buf):
        return None, offset
    crc, kind, length = _HEAD.unpack_from(buf, offset)
    body_start = offset + _HEAD.size
    if body_start + length > len(buf):
        return None, offset
    payload = buf[body_start : body_start + length]
    if zlib.crc32(bytes([kind]) + payload) & 0xFFFFFFFF != crc:
        return None, offset
    if kind == 0:
        return None, offset  # zero padding — end of journal content
    (txn_id,) = _TXN.unpack_from(payload, 0)
    record = JournalRecord(kind=kind, txn_id=txn_id)
    if kind == UPDATE:
        pos = _TXN.size
        (tlen,) = struct.unpack_from("<H", payload, pos)
        pos += 2
        record.table = payload[pos : pos + tlen].decode("utf-8")
        pos += tlen
        (record.key,) = struct.unpack_from("<q", payload, pos)
        pos += 8
        record.before, pos = _decode_optional(payload, pos)
        record.after, pos = _decode_optional(payload, pos)
    return record, body_start + length


class Journal:
    """Append-only redo log over the file gateway."""

    def __init__(self, fs: TieraFileSystem, path: str):
        self.fs = fs
        self.path = path
        mode = "a" if fs.exists(path) else "w"
        self.file = fs.open(path, mode)
        self.bytes_since_checkpoint = 0
        self._flushed_through_block = 0

    # -- appends (buffered until force) -----------------------------------

    def _append(self, record: JournalRecord, ctx: Optional[RequestContext]) -> None:
        blob = encode_record(record)
        self.file.write(blob, ctx=ctx)
        self.bytes_since_checkpoint += len(blob)

    def log_begin(self, txn_id: int, ctx: Optional[RequestContext] = None) -> None:
        self._append(JournalRecord(kind=BEGIN, txn_id=txn_id), ctx)

    def log_update(
        self,
        txn_id: int,
        table: str,
        key: int,
        before: Optional[bytes],
        after: Optional[bytes],
        ctx: Optional[RequestContext] = None,
    ) -> None:
        self._append(
            JournalRecord(
                kind=UPDATE, txn_id=txn_id, table=table, key=key,
                before=before, after=after,
            ),
            ctx,
        )

    def log_commit(
        self,
        txn_id: int,
        ctx: Optional[RequestContext] = None,
        force: bool = True,
    ) -> None:
        """Append COMMIT; with ``force`` the journal is fsynced — the
        durability point.  Read-only transactions pass ``force=False``:
        their BEGIN/COMMIT markers ride along with the next forced flush
        (group commit), which is why they cost journal *writes* but not
        a sync each (§4.1.1's read-only journal observation)."""
        self._append(JournalRecord(kind=COMMIT, txn_id=txn_id), ctx)
        if force:
            self.file.fsync(ctx=ctx)
            self._flushed_through_block = self.file.tell() // 4096
            return
        # Group commit: unforced commits ride along, but a filled-up
        # journal block flushes anyway (the kernel writeback the paper's
        # read-only-journal-writes observation comes from).
        block = self.file.tell() // 4096
        if block > self._flushed_through_block:
            self.file.flush(ctx=ctx)
            self._flushed_through_block = block

    def checkpoint(self, ctx: Optional[RequestContext] = None) -> None:
        """Truncate after data pages are known durable."""
        self.file.truncate(0, ctx=ctx)
        self.file.seek(0)
        self._append(JournalRecord(kind=CHECKPOINT, txn_id=0), ctx)
        self.file.fsync(ctx=ctx)
        self.bytes_since_checkpoint = 0

    # -- recovery ----------------------------------------------------------------

    def committed_records(
        self, ctx: Optional[RequestContext] = None
    ) -> List[JournalRecord]:
        """UPDATE records of committed transactions, in append order."""
        self.file.flush(ctx=ctx)
        reader = self.fs.open(self.path, "r")
        buf = reader.read(ctx=ctx)
        reader.close()
        records: List[JournalRecord] = []
        offset = 0
        while True:
            record, offset = decode_record(buf, offset)
            if record is None:
                break
            records.append(record)
        committed = {r.txn_id for r in records if r.kind == COMMIT}
        return [r for r in records if r.kind == UPDATE and r.txn_id in committed]

    def close(self, ctx: Optional[RequestContext] = None) -> None:
        self.file.close(ctx=ctx)
