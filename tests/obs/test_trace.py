"""Request tracing: span trees over the virtual timeline."""

from repro.core.events import ActionEvent
from repro.core.policy import Rule
from repro.core.responses import Copy
from repro.core.selectors import InsertObject
from repro.core.server import TieraServer
from repro.core import templates
from repro.obs.trace import Span, Tracer
from repro.simcloud.clock import SimClock
from repro.simcloud.cluster import Cluster
from repro.simcloud.resources import RequestContext
from repro.tiers.registry import TierRegistry
from tests.core.conftest import build_instance


class TestSpan:
    def test_child_inherits_foreground(self):
        root = Span("r", "request", 0.0, foreground=True)
        child = root.child("c", "tier-op", 1.0)
        background = root.child("b", "rule", 1.0, foreground=False)
        assert child.foreground
        assert not background.foreground
        assert not background.child("bb", "tier-op", 1.0).foreground

    def test_find_is_recursive(self):
        root = Span("r", "request", 0.0)
        rule = root.child("rule", "rule", 0.0)
        rule.child("t1.put", "tier-op", 0.0)
        root.child("t2.get", "tier-op", 0.0)
        assert [s.name for s in root.find("tier-op")] == ["t1.put", "t2.get"]

    def test_foreground_rule_seconds(self):
        root = Span("r", "request", 0.0)
        root.child("fg", "rule", 0.0).finish(0.3)
        root.child("bg", "rule", 0.0, foreground=False).finish(5.0)
        assert root.foreground_rule_seconds() == 0.3

    def test_to_dict_round_trips_tree(self):
        root = Span("put k", "request", 1.0, attrs={"op": "put"})
        root.child("t1.put", "tier-op", 1.0, bytes=5).finish(1.2)
        root.finish(1.5)
        out = root.to_dict()
        assert out["duration"] == 0.5
        assert out["attrs"] == {"op": "put"}
        assert out["children"][0]["attrs"] == {"bytes": 5}


class TestTracer:
    def test_disabled_by_default(self):
        clock = SimClock()
        tracer = Tracer(clock)
        ctx = RequestContext(clock)
        assert tracer.start_request("get", "k", ctx) is None
        assert ctx.span is None

    def test_force_overrides_disabled(self):
        clock = SimClock()
        tracer = Tracer(clock)
        ctx = RequestContext(clock)
        root = tracer.start_request("get", "k", ctx, force=True)
        assert root is not None
        assert ctx.span is root and ctx.trace is root
        tracer.finish_request(root, ctx)
        assert ctx.span is None and ctx.trace is None
        assert tracer.last() is root

    def test_nested_request_keeps_outer_root(self):
        clock = SimClock()
        tracer = Tracer(clock, enabled=True)
        ctx = RequestContext(clock)
        outer = tracer.start_request("put", "k", ctx)
        assert tracer.start_request("put", "k2", ctx) is None
        assert ctx.trace is outer

    def test_ring_drops_oldest(self):
        clock = SimClock()
        tracer = Tracer(clock, capacity=2, enabled=True)
        for n in range(3):
            ctx = RequestContext(clock)
            root = tracer.start_request("get", f"k{n}", ctx)
            tracer.finish_request(root, ctx)
        assert tracer.dropped == 1
        assert [t.attrs["key"] for t in tracer.recent()] == ["k1", "k2"]


class TestTracedRequests:
    """End-to-end traces through a real instance."""

    def test_traced_get_shows_serving_tier_and_rules(self, registry):
        # A GET-path rule: promote the object to tier1 on every read.
        instance = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6), ("tier2", "EBS", 10 ** 7)],
            rules=[
                Rule(
                    ActionEvent("insert"),
                    [Copy(InsertObject(), "tier2")],
                    name="store-cold",
                ),
                Rule(
                    ActionEvent("get"),
                    [Copy(InsertObject(), "tier1")],
                    name="promote-on-read",
                ),
            ],
        )
        server = TieraServer(instance)
        server.put("k", b"payload")
        server.get("k", trace=True)

        trace = server.last_trace()
        assert trace is not None
        assert trace.attrs["op"] == "get"
        assert trace.attrs["served_by"] in ("tier1", "tier2")
        rule_names = [s.name for s in trace.find("rule")]
        assert "promote-on-read" in rule_names
        tier_ops = trace.find("tier-op")
        assert any(s.attrs.get("hit") for s in tier_ops if "get" in s.name)
        # Simulated timestamps are consistent: children nest inside root.
        for span in tier_ops:
            assert trace.start <= span.start <= span.end <= trace.end

    def test_traced_put_records_write_through_tiers(self, registry):
        instance = templates.write_through_instance(registry, mem="4M", ebs="4M")
        server = TieraServer(instance)
        ctx = server.put("k", b"x" * 100, trace=True)

        trace = server.last_trace()
        assert trace.attrs == {"op": "put", "key": "k"}
        assert trace.duration == ctx.elapsed
        assert [s.name for s in trace.find("rule")] == ["write-through"]
        touched = {s.attrs["tier"] for s in trace.find("tier-op")}
        assert touched == {"tier1", "tier2"}
        assert all(s.foreground for s in trace.find("rule"))

    def test_tracing_does_not_change_latency(self):
        """The observer effect: traced and untraced runs agree exactly.

        Each run gets its own identically-seeded cluster so the latency
        models draw the same random sequence.
        """
        latencies = []
        for traced in (False, True):
            cluster = Cluster(seed=99)
            instance = templates.write_through_instance(
                TierRegistry(cluster), mem="4M", ebs="4M"
            )
            server = TieraServer(instance)
            ctx = server.put("k", b"x" * 512, trace=traced)
            get_ctx = RequestContext(instance.clock)
            server.get("k", ctx=get_ctx, trace=traced)
            latencies.append((ctx.elapsed, get_ctx.elapsed))
            instance.shutdown()
        assert latencies[0] == latencies[1]

    def test_untraced_requests_leave_no_spans(self, registry):
        instance = templates.write_through_instance(registry, mem="4M", ebs="4M")
        server = TieraServer(instance)
        server.put("k", b"v")
        server.get("k")
        assert server.last_trace() is None
        assert server.obs.tracer.recent() == []
