"""Batch span trees: request → (shard) → op → rule → tier-op, on every facade."""

import pytest

from repro.core.api import BatchOp
from repro.core.events import ActionEvent
from repro.core.instance import TieraInstance
from repro.core.policy import Policy, Rule
from repro.core.responses import Store
from repro.core.selectors import InsertObject
from repro.core.server import TieraServer
from repro.core.sharding import ShardedTieraServer
from repro.rpc import TieraClient, TieraRpcServer
from repro.simcloud.clock import WallClock
from repro.simcloud.cluster import Cluster
from repro.tiers.registry import TierRegistry


def write_through_server(seed=77, clock=None):
    cluster = Cluster(seed=seed) if clock is None else Cluster(clock=clock)
    registry = TierRegistry(cluster)
    tiers = [
        registry.create("Memcached", tier_name="tier1", size=64 * 1024 * 1024),
        registry.create("EBS", tier_name="tier2", size=64 * 1024 * 1024),
    ]
    instance = TieraInstance(
        name="batch-trace",
        tiers=tiers,
        policy=Policy([
            Rule(
                ActionEvent("insert"),
                [Store(InsertObject(), ("tier1", "tier2"))],
                name="write-through",
            )
        ]),
        clock=cluster.clock,
    )
    return TieraServer(instance)


def put_batch(n):
    return [BatchOp("put", f"k{i}", b"x" * 64) for i in range(n)]


def assert_depth4_put_tree(root, expected_ops):
    """The tentpole shape: every batch item is an ``op`` child of the
    request root, and each op span still contains the rule and tier-op
    spans the un-batched path would have produced."""
    assert root.kind == "request"
    op_spans = [s for s in root.children if s.kind == "op"]
    assert len(op_spans) == expected_ops
    assert [s.attrs["index"] for s in op_spans] == list(range(expected_ops))
    for span in op_spans:
        assert span.attrs["op"] == "put"
        assert "lane" in span.attrs
        assert span.end >= span.start
        rules = [c for c in span.children if c.kind == "rule"]
        assert [r.name for r in rules] == ["write-through"]
        tier_ops = rules[0].find("tier-op")
        assert {t.name for t in tier_ops} == {"tier1.put", "tier2.put"}


class TestDirectFacade:
    def test_trace_flag_builds_depth4_tree(self):
        server = write_through_server()
        server.execute_batch(put_batch(4), ctx=None, trace=True)
        root = server.obs.tracer.last()
        assert root is not None
        assert root.attrs["op"] == "batch"
        assert_depth4_put_tree(root, 4)

    def test_item_error_lands_on_its_op_span(self):
        server = write_through_server()
        ops = [BatchOp("put", "k0", b"x"), BatchOp("get", "missing")]
        result = server.execute_batch(ops, trace=True)
        assert not result.results[1].ok
        root = server.obs.tracer.last()
        op_spans = [s for s in root.children if s.kind == "op"]
        assert op_spans[0].error is None
        assert op_spans[1].error is not None

    def test_untraced_batch_records_no_spans(self):
        server = write_through_server()
        server.execute_batch(put_batch(2))
        assert server.obs.tracer.last() is None


class TestShardedFacade:
    def test_router_trace_nests_shard_then_op(self):
        sharded = ShardedTieraServer({
            "s1": write_through_server(seed=1),
            "s2": write_through_server(seed=2),
        })
        n = 8
        sharded.execute_batch(put_batch(n), trace=True)
        root = sharded.obs.tracer.last()
        assert root is not None and root.kind == "request"
        shard_spans = [s for s in root.children if s.kind == "shard"]
        assert shard_spans, "router trace lost its shard spans"
        assert root.attrs["items"] == n
        assert root.attrs["shards"] == len(shard_spans)
        # Every item appears exactly once, under the shard that owns it.
        all_ops = [op for s in shard_spans for op in s.find("op")]
        assert len(all_ops) == n
        assert {op.attrs["key"] for op in all_ops} == {
            f"k{i}" for i in range(n)
        }
        for shard_span in shard_spans:
            ops_here = shard_span.find("op")
            assert shard_span.attrs["items"] == len(ops_here)
            for op in ops_here:
                rules = [c for c in op.children if c.kind == "rule"]
                assert [r.name for r in rules] == ["write-through"]
                assert {t.name for t in rules[0].find("tier-op")} == {
                    "tier1.put", "tier2.put"
                }


class TestRpcFacade:
    @pytest.fixture
    def live(self):
        clock = WallClock()
        server = write_through_server(clock=clock)
        rpc = TieraRpcServer(server, port=0).start()
        yield rpc
        rpc.stop()
        server.instance.shutdown()
        clock.shutdown()

    def test_server_side_trace_of_remote_batch(self, live):
        live.tiera.obs.tracer.enabled = True
        with TieraClient(live.host, live.port) as client:
            result = client.execute_batch(put_batch(3))
        assert result.ok
        root = live.tiera.obs.tracer.last()
        assert root is not None
        assert_depth4_put_tree(root, 3)
