"""Failure injection beyond the Figure 17 scenario."""

import pytest

from repro.core.errors import TierUnavailableError
from repro.core.server import TieraServer
from repro.core.templates import (
    high_durability_instance,
    memcached_replicated_instance,
    persistent_instance,
)
from repro.simcloud.errors import ServiceUnavailableError


class TestS3Outage:
    """The 2008 S3 outage ([2] in the paper): the backup target dies."""

    def test_backup_failure_does_not_break_clients(self, registry, cluster):
        instance = high_durability_instance(registry, push_interval=60)
        server = TieraServer(instance)
        instance.tiers.get("tier3").service.fail()  # S3 down
        server.put("k", b"v")  # foreground path: Memcached + EBS
        assert server.get("k") == b"v"
        cluster.clock.advance(61)  # the S3 push fires and fails...
        # ...but is swallowed as a background error, not a crash.
        assert instance.control.background_errors
        assert server.get("k") == b"v"

    def test_backups_resume_after_recovery(self, registry, cluster):
        instance = high_durability_instance(registry, push_interval=60)
        server = TieraServer(instance)
        s3 = instance.tiers.get("tier3").service
        s3.fail()
        server.put("k", b"v")
        cluster.clock.advance(61)
        assert "tier3" not in instance.meta("k").locations
        s3.recover()
        cluster.clock.advance(60)
        assert "tier3" in instance.meta("k").locations


class TestZoneFailure:
    def test_replicated_instance_survives_a_zone(self, registry, cluster):
        instance = memcached_replicated_instance(registry, mem="1M")
        server = TieraServer(instance)
        server.put("k", b"v")
        # The whole us-east-1a zone goes dark: every node in it fails.
        for node in cluster.nodes.values():
            if node.zone.name == "us-east-1a":
                node.fail()
        assert server.get("k") == b"v"  # served from us-east-1b

    def test_both_zones_down_is_fatal(self, registry, cluster):
        instance = memcached_replicated_instance(registry, mem="1M")
        server = TieraServer(instance)
        server.put("k", b"v")
        for node in cluster.nodes.values():
            node.fail()
        with pytest.raises(TierUnavailableError):
            server.get("k")


class TestForegroundFailurePropagation:
    def test_write_through_put_fails_loudly(self, registry):
        instance = persistent_instance(registry, mem="1M", ebs="1M")
        server = TieraServer(instance)
        instance.tiers.get("tier2").service.fail()
        # The Figure 4 write-through copy is foreground: the client sees
        # the EBS failure instead of silently losing durability.
        with pytest.raises(ServiceUnavailableError):
            server.put("k", b"v")

    def test_failed_put_charges_the_timeout(self, registry):
        instance = persistent_instance(registry, mem="1M", ebs="1M")
        server = TieraServer(instance)
        instance.tiers.get("tier2").service.fail()
        from repro.simcloud.resources import RequestContext

        ctx = RequestContext(instance.clock)
        with pytest.raises(ServiceUnavailableError):
            server.put("k", b"v", ctx=ctx)
        assert ctx.elapsed >= instance.tiers.get("tier2").service.timeout
