"""The repro CLI: validate / cost commands (serve covered via rpc tests)."""

import pytest

from repro.cli import main

SPEC = """
Tiera Demo() {
    tier1: { name: Memcached, size: 1G };
    tier2: { name: EBS, size: 2G };
    event(insert.into) : response {
        store(what: insert.object, to: tier1);
    }
}
"""

PARAMETRIC = """
Tiera Timed(time t) {
    tier1: { name: Memcached, size: 1G };
    event(time=t) : response {
        copy(what: object.location == tier1, to: tier1);
    }
}
"""


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "demo.tiera"
    path.write_text(SPEC)
    return str(path)


class TestValidate:
    def test_valid_spec(self, spec_file, capsys):
        assert main(["validate", spec_file]) == 0
        out = capsys.readouterr().out
        assert "instance Demo" in out
        assert "tier tier1: Memcached" in out
        assert "compiles cleanly" in out

    def test_parametric_spec_lists_params(self, tmp_path, capsys):
        path = tmp_path / "p.tiera"
        path.write_text(PARAMETRIC)
        assert main(["validate", str(path)]) == 0
        assert "time t" in capsys.readouterr().out

    def test_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "bad.tiera"
        path.write_text("Tiera Broken { nope }")
        assert main(["validate", str(path)]) == 1
        assert "syntax error" in capsys.readouterr().err


class TestCost:
    def test_prices_configuration(self, spec_file, capsys):
        assert main(["cost", spec_file]) == 0
        out = capsys.readouterr().out
        assert "$35.20/month" in out  # 1G memcached + 2G EBS
        assert "tier1 (memcached): $35.00" in out

    def test_args_passed_through(self, tmp_path, capsys):
        path = tmp_path / "p.tiera"
        path.write_text(PARAMETRIC)
        assert main(["cost", str(path), "--arg", "t=30"]) == 0
        assert "$35.00/month" in capsys.readouterr().out

    def test_bad_arg_format(self, spec_file):
        with pytest.raises(SystemExit):
            main(["cost", spec_file, "--arg", "nonsense"])
