"""B+tree: ordering, splits, overflow chains, deletion, model check."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.minidb.btree import BTree, MAX_INLINE
from repro.apps.minidb.buffer import BufferPool
from repro.apps.minidb.pager import Pager


@pytest.fixture
def tree(fs):
    pager = Pager(fs, "/tree", create=True)
    return BTree(BufferPool(pager, 128), pager)


class TestBasics:
    def test_missing_key(self, tree):
        assert tree.search(1) is None

    def test_insert_search(self, tree):
        assert tree.insert(5, b"five") is True
        assert tree.search(5) == b"five"

    def test_overwrite(self, tree):
        tree.insert(5, b"old")
        assert tree.insert(5, b"new") is False  # not a new key
        assert tree.search(5) == b"new"

    def test_insert_no_overwrite(self, tree):
        tree.insert(5, b"old")
        assert tree.insert(5, b"new", overwrite=False) is False
        assert tree.search(5) == b"old"

    def test_negative_keys(self, tree):
        tree.insert(-10, b"neg")
        tree.insert(10, b"pos")
        assert tree.search(-10) == b"neg"
        assert [k for k, _ in tree.scan()] == [-10, 10]

    def test_delete(self, tree):
        tree.insert(1, b"x")
        assert tree.delete(1) is True
        assert tree.delete(1) is False
        assert tree.search(1) is None


class TestSplitsAndScale:
    def test_sequential_inserts_split(self, tree):
        for key in range(500):
            tree.insert(key, b"v" * 50)
        assert tree.depth() >= 2
        for key in (0, 250, 499):
            assert tree.search(key) == b"v" * 50

    def test_random_order_inserts(self, tree):
        keys = list(range(800))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, str(key).encode())
        assert [k for k, _ in tree.scan()] == list(range(800))

    def test_reverse_order_inserts(self, tree):
        for key in reversed(range(400)):
            tree.insert(key, b"x")
        assert [k for k, _ in tree.scan()] == list(range(400))

    def test_scan_range(self, tree):
        for key in range(0, 100, 2):
            tree.insert(key, b"e")
        assert [k for k, _ in tree.scan(10, 20)] == [10, 12, 14, 16, 18]

    def test_scan_open_ends(self, tree):
        for key in range(5):
            tree.insert(key, b"x")
        assert [k for k, _ in tree.scan(start=3)] == [3, 4]
        assert [k for k, _ in tree.scan(end=2)] == [0, 1]


class TestOverflow:
    def test_large_value_roundtrip(self, tree):
        big = bytes(range(256)) * 40  # 10 KB: multi-page overflow chain
        tree.insert(1, big)
        assert tree.search(1) == big

    def test_boundary_value_inline(self, tree):
        tree.insert(1, b"x" * MAX_INLINE)
        assert tree.search(1) == b"x" * MAX_INLINE

    def test_overflow_pages_freed_on_delete(self, tree):
        big = b"y" * 20000
        tree.insert(1, big)
        pages_with_value = tree.pager.page_count
        tree.delete(1)
        freed_head = tree.pager.freelist_head
        assert freed_head != 0  # chain went back to the freelist
        # Re-inserting reuses freed pages instead of growing the file.
        tree.insert(2, big)
        assert tree.pager.page_count <= pages_with_value + 1

    def test_overwrite_releases_old_chain(self, tree):
        tree.insert(1, b"a" * 20000)
        tree.insert(1, b"b" * 20000)
        assert tree.search(1) == b"b" * 20000

    def test_mixed_inline_and_overflow(self, tree):
        for key in range(50):
            value = b"small" if key % 2 else b"L" * 2000
            tree.insert(key, value)
        for key in range(50):
            expected = b"small" if key % 2 else b"L" * 2000
            assert tree.search(key) == expected


class TestModelCheck:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "del"]),
                st.integers(min_value=0, max_value=40),
                st.binary(min_size=0, max_size=700),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, ops):
        from repro.simcloud.cluster import Cluster
        from repro.tiers.registry import TierRegistry
        from repro.core.server import TieraServer
        from repro.fs.filesystem import TieraFileSystem
        from tests.core.conftest import build_instance

        registry = TierRegistry(Cluster(seed=5))
        instance = build_instance(registry, [("t", "Memcached", 256 * 1024 * 1024)])
        fs = TieraFileSystem(TieraServer(instance))
        pager = Pager(fs, "/t", create=True)
        tree = BTree(BufferPool(pager, 64), pager)
        model = {}
        for op, key, value in ops:
            if op == "put":
                tree.insert(key, value)
                model[key] = value
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert {k: v for k, v in tree.scan()} == model
        for key in range(41):
            assert tree.search(key) == model.get(key)
