"""The policy audit log: what the control layer did, and why.

Every rule firing — timer, threshold, or action event, foreground or
background — appends one structured :class:`AuditRecord`; so do monitor
probes and background failures that used to vanish into
``ControlLayer.background_errors``.  The log is a bounded ring: old
records fall off, the drop count is kept, and nothing here allocates
unboundedly during a week-long simulated run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

#: How many audit records the ring retains by default.
DEFAULT_AUDIT_CAPACITY = 2048


@dataclass
class AuditRecord:
    """One control-layer happening, on the simulated clock."""

    time: float            #: simulated time the happening started
    category: str          #: rule | background-error | probe | reconfigure | placement
    name: str              #: rule name / probe name / error source
    origin: str = ""       #: what fired it: action:get, timer, threshold, …
    foreground: bool = True  #: did it run on a client's latency path?
    responses: int = 0     #: number of responses executed
    tiers_touched: Tuple[str, ...] = ()  #: tiers whose data path was hit
    objects_moved: int = 0  #: tier data operations performed
    duration: float = 0.0  #: simulated seconds the work charged
    error: Optional[str] = None  #: error message, if the work failed
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out = {
            "time": self.time,
            "category": self.category,
            "name": self.name,
            "origin": self.origin,
            "foreground": self.foreground,
            "responses": self.responses,
            "tiers_touched": list(self.tiers_touched),
            "objects_moved": self.objects_moved,
            "duration": self.duration,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


class AuditLog:
    """Bounded append-only ring of :class:`AuditRecord`."""

    def __init__(self, capacity: int = DEFAULT_AUDIT_CAPACITY):
        if capacity < 1:
            raise ValueError("audit log capacity must be positive")
        self._records: Deque[AuditRecord] = deque(maxlen=capacity)
        self.appended = 0
        self.dropped = 0

    def append(self, record: AuditRecord) -> AuditRecord:
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append(record)
        self.appended += 1
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        errors_only: bool = False,
        limit: Optional[int] = None,
    ) -> List[AuditRecord]:
        """Filtered view, oldest first; ``limit`` keeps the newest N."""
        out = [
            r for r in self._records
            if (category is None or r.category == category)
            and (name is None or r.name == name)
            and (not errors_only or r.error is not None)
        ]
        if limit is not None:
            out = out[-limit:]
        return out

    def tail(self, n: int = 20) -> List[AuditRecord]:
        return self.records(limit=n)

    def error_count(self) -> int:
        return sum(1 for r in self._records if r.error is not None)

    def to_dicts(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        return [r.to_dict() for r in self.records(limit=limit)]

    def clear(self) -> None:
        self._records.clear()
        self.appended = 0
        self.dropped = 0
