"""Unified observability: metrics registry, request tracing, audit log.

Tiera's policies move data between tiers behind the application's back;
this package is how you find out what actually happened.  Three pillars,
bundled by :class:`~repro.obs.hub.Observability`:

* a **metrics registry** (:mod:`repro.obs.registry`) — labelled
  counters, gauges, and histograms, stamped with simulated-clock time,
  exportable as a JSON snapshot or Prometheus text exposition;
* **request tracing** (:mod:`repro.obs.trace`) — every PUT/GET/DELETE
  can open a trace whose child spans record each tier operation and
  each policy rule run on the client path (foreground) or off it
  (background);
* a **policy audit log** (:mod:`repro.obs.audit`) — a bounded ring of
  structured records, one per rule firing / monitor probe / background
  failure, so "which rule fired and what did it cost?" has an answer.

None of it spends *virtual* time: observation never distorts the
simulated latencies the benchmarks report.  See docs/OBSERVABILITY.md.
"""

from repro.obs.audit import AuditLog, AuditRecord
from repro.obs.export import render_prometheus, stats_snapshot, tier_report
from repro.obs.hub import Observability
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "AuditLog",
    "AuditRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "render_prometheus",
    "stats_snapshot",
    "tier_report",
]
