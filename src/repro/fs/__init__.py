"""File interface over Tiera: the prototype's FUSE gateway role.

"The FUSE filesystem we developed splits the database files into 4 KB
objects (OS page size) and stores them in Tiera" (§4.1.1).
:class:`~repro.fs.filesystem.TieraFileSystem` does the same in-process:
POSIX-ish open/read/write/fsync semantics over a
:class:`~repro.core.server.TieraServer`, with dirty-block buffering that
flushes on fsync/close (so a database's commit discipline is what
actually drives storage writes), and an optional node page cache
modelling the EC2 instance's OS buffer cache.

:mod:`repro.fs.dedupfs` is the modified-S3FS stand-in from the
Figure 12 experiment: the same file API over a ``storeOnce`` instance,
with de-duplication statistics.
"""

from repro.fs.cache import PageCache
from repro.fs.filesystem import TieraFile, TieraFileSystem
from repro.fs.dedupfs import DedupFileSystem

__all__ = ["DedupFileSystem", "PageCache", "TieraFile", "TieraFileSystem"]
