#!/usr/bin/env python
"""Quickstart: define a Tiera instance from a spec, store data, watch
the policy manage its life cycle.

Run:  python examples/quickstart.py
"""

from repro.core.server import TieraServer
from repro.simcloud.cluster import Cluster
from repro.spec import compile_spec
from repro.tiers.registry import TierRegistry

# Figure 3 of the paper, verbatim: a low-latency instance that stores
# into Memcached and writes dirty data back to EBS every t seconds.
SPEC = """
Tiera LowLatencyInstance(time t) {
    % two tiers specified with initial sizes
    tier1: { name: Memcached, size: 64M };
    tier2: { name: EBS, size: 64M };

    % action event defined to always store data into Memcached
    event(insert.into) : response {
        insert.object.dirty = true;
        store(what: insert.object, to: tier1);
    }

    % write back policy: copy dirty data to the persistent store
    event(time=t) : response {
        copy(what: object.location == tier1 && object.dirty == true,
             to: tier2);
    }
}
"""


def main() -> None:
    # Everything runs against a simulated cloud: a cluster with a
    # deterministic clock and seeded latency models.
    cluster = Cluster(seed=7)
    registry = TierRegistry(cluster)

    instance = compile_spec(SPEC, registry, args={"t": 30})
    server = TieraServer(instance)
    print(f"compiled instance: {instance}")

    # PUT: the policy places the object in Memcached and marks it dirty.
    result = server.put_object("greeting", b"hello, tiered world",
                               tags=["demo"])
    meta = server.stat("greeting")
    print(f"PUT took {result.latency * 1000:.3f} ms "
          f"→ locations={sorted(meta.locations)} dirty={meta.dirty}")

    # GET: served from the fastest tier holding the object.
    result = server.get_object("greeting")
    print(f"GET returned {result.value!r} in {result.latency * 1000:.3f} ms")

    # Let simulated time pass: the timer event writes dirty data back.
    cluster.clock.advance(31)
    meta = server.stat("greeting")
    print(f"after 31 s: locations={sorted(meta.locations)} dirty={meta.dirty}")

    # The instance knows what its configuration costs per month.
    print(f"monthly storage cost: ${instance.monthly_cost():.2f}")

    # Policies can change at runtime (§4.2.3): stop writing back, start
    # compressing instead.
    from repro.core.events import ActionEvent
    from repro.core.policy import Rule
    from repro.core.responses import Compress
    from repro.core.selectors import InsertObject

    instance.reconfigure(
        remove_rules=["LowLatencyInstance-rule-2"],
        add_rules=[
            Rule(
                ActionEvent("insert"),
                [Compress(InsertObject())],
                name="compress-on-insert",
            )
        ],
    )
    server.put_object("compressible", b"repetitive " * 1000)
    stored = instance.tiers.get("tier1").service.size_of("compressible")
    print(f"compress-on-insert: 11000 logical bytes → {stored} stored bytes")

    # Observability: trace one GET end to end, then dump the registry.
    server.get_object("greeting", trace=True)
    trace = server.last_trace()
    print(f"traced GET served by {trace.attrs.get('served_by')}: "
          + ", ".join(f"{span.name} ({span.kind})" for span in trace.children))

    snapshot = server.obs.snapshot(audit_limit=3)
    print(f"stats snapshot at t={snapshot['time']:.1f}s — "
          f"{len(snapshot['metrics'])} metric families, "
          f"{snapshot['audit']['appended']} audit records")
    requests = snapshot["metrics"]["tiera_requests_total"]["samples"]
    for labels, value in sorted(requests.items()):
        print(f"  tiera_requests_total{{{labels}}} = {value:.0f}")
    for record in snapshot["audit"]["tail"]:
        print(f"  audit [{record['time']:.1f}] {record['category']} "
              f"{record['name']} ({record['origin']})")


if __name__ == "__main__":
    main()
