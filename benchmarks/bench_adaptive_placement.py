"""Adaptive placement vs static watermark caching on a shifting hot set.

The pitch for ``adaptive_placement(...)`` is that measurement-driven
tiering beats any fixed placement rule once the workload mixes a
skewed-but-drifting hot set with scan traffic: an LRU watermark cache
admits every miss, so one-off scan reads continuously flush the tail of
the genuine hot set out of the fast tier, while the placement engine
admits only sketch-confirmed frequent keys and pins them with
hysteresis.

Three same-seed deployments face the identical op stream (a pure
function of SEED) over a Memcached-over-EBS pair whose cache holds
``CACHE_RECORDS`` of the ``RECORDS``-key space:

* **write-through-lru** — the classic watermark policy: inserts land in
  the cache and persist to EBS, GET misses promote, LRU entries drop.
* **demand-lru** — the stronger static baseline: inserts persist to EBS
  only (no write pollution), GET misses promote, LRU entries drop.
* **adaptive** — inserts persist to EBS; the placement engine promotes
  the heat tracker's confirmed-hot keys and swap-demotes decayed ones.

Each phase the zipfian hot set shifts: fresh keys enter at the head of
the popularity ranking and the old tail goes cold.  A small uniform
scan component reads the whole keyspace.  Gates: the adaptive run must
beat the *best* static policy — read p95 no worse AND total monthly
cost (provisioned storage + metered request charges) no higher, with at
least one strictly better.

Standalone use::

    python benchmarks/bench_adaptive_placement.py           # full table
    python benchmarks/bench_adaptive_placement.py --smoke   # JSON gates

Smoke output contains only virtual-timeline figures, so same-seed runs
print byte-identical JSON (the CI adaptive-placement job diffs two
runs).
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.bench.report import format_table
from repro.core.conditions import AttrRef, Comparison, Literal, Not
from repro.core.events import ActionEvent
from repro.core.instance import DROP, TieraInstance
from repro.core.policy import Policy, Rule
from repro.core.responses import Copy, Retrieve, Store
from repro.core.selectors import InsertObject
from repro.core.server import TieraServer
from repro.core.units import parse_size
from repro.simcloud.cluster import Cluster
from repro.simcloud.resources import RequestContext
from repro.tiers.registry import TierRegistry
from repro.workloads.distributions import ZipfianKeys
from repro.workloads.ycsb import record_payload

SEED = 4117
RECORDS = 640            # whole keyspace (scans read all of it)
RECORD_SIZE = 4096       # the paper's 4 KB records
ACTIVE = 80              # per-phase hot-set size (zipfian within it)
THETA = 1.1              # skew inside the active set
PHASES = 3
OPS_PER_PHASE = 2500
WARMUP_OPS = 1500        # unmeasured ramp on phase 0's hot set
SHIFT = 16               # keys entering/leaving the hot set per phase
CACHE_RECORDS = 88       # cache slots: the active set plus thin slack
SCAN_FRACTION = 0.05     # uniform reads over the whole keyspace
WRITE_FRACTION = 0.08    # zipfian updates of active keys
THINK_TIME = 0.002       # client think time, virtual seconds per op
DRAIN_EVERY = 40         # ops between background-timer drains

MEM_SIZE = str(CACHE_RECORDS * RECORD_SIZE // 1024) + "K"
EBS_SIZE = "16M"
CACHE_HIT_CUTOFF = 0.0015  # reads faster than this came from Memcached

#: Heat-tracker configuration for the adaptive run: a short EWMA window
#: (so last phase's heat decays within a phase) and a sketch big enough
#: to hold the active set with room for scan churn at the tail.
HEAT_CONFIG = dict(
    windows=(2.0, 10.0), top_k=128, max_objects=768,
    hot_min=2, sample_interval=2.5,
)

#: Placement-engine configuration: cycle every 0.2 virtual seconds,
#: admit anything the sketch confirmed whose score clears 0.3, and keep
#: enough move/pre-warm budget to absorb a whole hot-set shift in a few
#: cycles.
PLACEMENT_CONFIG = dict(
    objective="balanced", interval=0.2, hysteresis=2.0, min_score=0.3,
    max_moves=24, prewarm_limit=24, high_watermark=0.95, refine=True,
)


def key_name(index: int) -> str:
    return f"rec{index:05d}"


def _tiers(registry: TierRegistry):
    return [
        registry.create(
            "Memcached", tier_name="tier1",
            size=parse_size(MEM_SIZE), zone="us-east-1a",
        ),
        registry.create(
            "EBS", tier_name="tier2",
            size=parse_size(EBS_SIZE), zone="us-east-1a",
        ),
    ]


def _not_cached():
    return Not(
        Comparison("==", AttrRef(("insert", "object", "location")), Literal("tier1"))
    )


def _cached():
    return Comparison(
        "==", AttrRef(("insert", "object", "location")), Literal("tier1")
    )


def build_write_through_lru(registry: TierRegistry) -> TieraInstance:
    """Static watermark policy A: cache-and-persist plus promote-on-miss."""
    rules = [
        Rule(
            ActionEvent("insert"),
            [Store(InsertObject(), "tier1"), Copy(InsertObject(), "tier2")],
            name="cache-and-persist",
        ),
        Rule(
            ActionEvent("get", guard=_not_cached()),
            [Retrieve(InsertObject(), promote_to="tier1")],
            name="promote-on-miss",
        ),
    ]
    instance = TieraInstance(
        name="WriteThroughLru", tiers=_tiers(registry),
        policy=Policy(rules), clock=registry.cluster.clock,
    )
    instance.eviction_chain.update({"tier1": DROP})
    return instance


def build_demand_lru(registry: TierRegistry) -> TieraInstance:
    """Static watermark policy B: persist-only writes, promote-on-miss.

    The stronger baseline — updates don't pollute the cache (a cached
    key's copy is refreshed in place instead)."""
    rules = [
        Rule(
            ActionEvent("insert"),
            [Store(InsertObject(), "tier2")],
            name="persist",
        ),
        Rule(
            ActionEvent("insert", guard=_cached()),
            [Copy(InsertObject(), "tier1")],
            name="refresh-cached",
        ),
        Rule(
            ActionEvent("get", guard=_not_cached()),
            [Retrieve(InsertObject(), promote_to="tier1")],
            name="promote-on-miss",
        ),
    ]
    instance = TieraInstance(
        name="DemandLru", tiers=_tiers(registry),
        policy=Policy(rules), clock=registry.cluster.clock,
    )
    instance.eviction_chain.update({"tier1": DROP})
    return instance


def build_adaptive(registry: TierRegistry) -> TieraInstance:
    """Persist-only writes; the placement engine manages the cache."""
    rules = [
        Rule(
            ActionEvent("insert"),
            [Store(InsertObject(), "tier2")],
            name="persist",
        ),
        Rule(
            ActionEvent("insert", guard=_cached()),
            [Copy(InsertObject(), "tier1")],
            name="refresh-cached",
        ),
    ]
    return TieraInstance(
        name="AdaptivePlacement", tiers=_tiers(registry),
        policy=Policy(rules), clock=registry.cluster.clock,
    )


POLICIES = (
    ("write-through-lru", build_write_through_lru, False),
    ("demand-lru", build_demand_lru, False),
    ("adaptive", build_adaptive, True),
)


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values)) - 1))
    return sorted_values[index]


def run_policy(build, adaptive: bool):
    """Drive the shared op stream against one deployment.

    The op sequence (key, kind, payload) is a pure function of SEED —
    identical across the three policies — so latency and cost deltas
    come from placement alone."""
    cluster = Cluster(seed=SEED)
    registry = TierRegistry(cluster)
    instance = build(registry)
    server = TieraServer(instance)
    ctx = RequestContext(cluster.clock)

    for index in range(RECORDS):
        server.put_object(
            key_name(index), record_payload(index, 0, RECORD_SIZE), ctx=ctx
        ).raise_for_error()
    cluster.clock.run_until(ctx.time)

    if adaptive:
        server.configure("heat", **HEAT_CONFIG).raise_for_error()
        server.configure("placement", **PLACEMENT_CONFIG).raise_for_error()

    zipf = ZipfianKeys(ACTIVE, theta=THETA, seed=SEED + 1)
    mix = random.Random(SEED + 2)
    scan = random.Random(SEED + 3)
    versions = {}
    read_latencies = []
    state = {"reads": 0, "hits": 0, "ops": 0, "measure": False}

    def one_op(offset: int) -> None:
        draw = mix.random()
        if draw < SCAN_FRACTION:
            index = scan.randrange(RECORDS)
            kind = "scan"
        else:
            rank = min(zipf.next_rank(), ACTIVE - 1)
            # Entrants surface at the head of the ranking; the old
            # tail drops out of the active window each phase.
            index = (rank - offset) % RECORDS
            kind = "write" if draw < SCAN_FRACTION + WRITE_FRACTION else "read"
        if kind == "write":
            version = versions.get(index, 0) + 1
            versions[index] = version
            server.put_object(
                key_name(index),
                record_payload(index, version, RECORD_SIZE),
                ctx=ctx,
            ).raise_for_error()
        else:
            result = server.get_object(key_name(index), ctx=ctx)
            result.raise_for_error()
            if state["measure"]:
                read_latencies.append(result.latency)
                state["reads"] += 1
                # A promote-on-miss rule serves the read from the cache
                # it just filled, so result.tier can't distinguish hits;
                # an EBS round-trip in the latency can (mem median is
                # ~0.31 ms, EBS ~3.5 ms).
                if result.latency < CACHE_HIT_CUTOFF:
                    state["hits"] += 1
        state["ops"] += 1
        ctx.wait(THINK_TIME)
        if state["ops"] % DRAIN_EVERY == 0:
            cluster.clock.run_until(ctx.time)

    # Unmeasured warmup on phase 0's hot set: every policy gets the
    # same ramp to a filled cache before the meter starts.
    for _ in range(WARMUP_OPS):
        one_op(0)
    cluster.clock.run_until(ctx.time)
    registry.meter.reset()
    state["measure"] = True

    for phase in range(PHASES):
        for _ in range(OPS_PER_PHASE):
            one_op(phase * SHIFT)
        cluster.clock.run_until(ctx.time)

    reads, hits = state["reads"], state["hits"]
    read_latencies.sort()
    meter = registry.meter
    request_charges = meter.request_charges()
    storage = instance.monthly_cost()
    report = {
        "reads": reads,
        "hit_rate": round(hits / reads, 4) if reads else 0.0,
        "read_p50_ms": round(_percentile(read_latencies, 0.50) * 1000, 4),
        "read_p95_ms": round(_percentile(read_latencies, 0.95) * 1000, 4),
        "read_p99_ms": round(_percentile(read_latencies, 0.99) * 1000, 4),
        "ebs_reads": meter.count("ebs.get"),
        "ebs_writes": meter.count("ebs.put"),
        "request_charges": round(request_charges, 6),
        "storage_monthly": round(storage, 6),
        "total_cost": round(storage + request_charges, 6),
        "virtual_seconds": round(ctx.time, 6),
    }
    if adaptive:
        status = instance.placement.status()
        report["placement"] = {
            "cycles": status["cycles"],
            "moves": status["moves"],
            "bytes_moved": status["bytes_moved"],
        }
    instance.shutdown()
    return report


def run_gates():
    """All three runs plus the adaptive-beats-best-static verdict."""
    results = {}
    for name, build, adaptive in POLICIES:
        results[name] = run_policy(build, adaptive)
    adaptive = results["adaptive"]
    statics = {n: results[n] for n, _, a in POLICIES if not a}
    best_p95 = min(r["read_p95_ms"] for r in statics.values())
    best_cost = min(r["total_cost"] for r in statics.values())
    p95_ok = adaptive["read_p95_ms"] <= best_p95
    cost_ok = adaptive["total_cost"] <= best_cost
    strict = (
        adaptive["read_p95_ms"] < best_p95
        or adaptive["total_cost"] < best_cost
    )
    report = {
        "seed": SEED,
        "records": RECORDS,
        "active": ACTIVE,
        "cache_records": CACHE_RECORDS,
        "policies": results,
        "best_static_p95_ms": best_p95,
        "best_static_total_cost": best_cost,
        "gate_p95": p95_ok,
        "gate_cost": cost_ok,
        "gate_strict_win": strict,
    }
    return p95_ok and cost_ok and strict, report


def run_table():
    ok, report = run_gates()
    rows = []
    for name, _, adaptive in POLICIES:
        r = report["policies"][name]
        moves = r.get("placement", {}).get("moves", "-")
        rows.append([
            name,
            f"{r['hit_rate']:.1%}",
            f"{r['read_p50_ms']:.3f}",
            f"{r['read_p95_ms']:.3f}",
            f"{r['read_p99_ms']:.3f}",
            r["ebs_reads"],
            f"${r['total_cost']:.4f}",
            moves,
        ])
    table = format_table(
        "Adaptive placement vs static watermark LRU (shifting zipfian + scans)",
        ["policy", "hit", "p50 ms", "p95 ms", "p99 ms", "ebs reads",
         "month cost", "moves"],
        rows,
        note=(
            f"gates: p95 {'PASS' if report['gate_p95'] else 'FAIL'} "
            f"(adaptive {report['policies']['adaptive']['read_p95_ms']:.3f} ms "
            f"vs best static {report['best_static_p95_ms']:.3f} ms), "
            f"cost {'PASS' if report['gate_cost'] else 'FAIL'} "
            f"(adaptive ${report['policies']['adaptive']['total_cost']:.4f} "
            f"vs best static ${report['best_static_total_cost']:.4f}); "
            f"{report['records']}-key space, {report['active']}-key hot set "
            f"shifting {SHIFT}/phase, {CACHE_RECORDS}-record cache."
        ),
    )
    return ok, report, table


def test_adaptive_placement(benchmark, emit):
    out = {}

    def experiment():
        out["ok"], out["report"], out["table"] = run_table()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    emit("adaptive_placement", out["table"])
    report = out["report"]
    assert report["gate_p95"], report
    assert report["gate_cost"], report
    assert report["gate_strict_win"], report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Adaptive placement engine vs static watermark caching."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="print the deterministic gate report as JSON; exit 1 on a "
             "failed gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        ok, report = run_gates()
        print(json.dumps(report, indent=2, sort_keys=True))
        if not ok:
            print("FAIL: adaptive placement gate", file=sys.stderr)
            return 1
        return 0
    ok, report, table = run_table()
    print(table)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
