"""Page-level storage for minidb.

A database file is an array of 4 KB pages — deliberately equal to the
FUSE gateway's block size, so one page I/O is exactly one Tiera object
I/O (the paper's MySQL-over-Tiera arrangement).  Page 0 is the header
(magic, page count, freelist head, B+tree root, row count); freed pages
form a linked freelist.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.apps.minidb.errors import CorruptPageError
from repro.fs.filesystem import TieraFileSystem
from repro.simcloud.resources import RequestContext

PAGE_SIZE = 4096
MAGIC = b"MDB1"
NO_PAGE = 0  # page 0 is the header, so 0 doubles as "null pointer"

_HEADER = struct.Struct("<4sQQQQ")  # magic, page_count, freelist, root, row_count


class Pager:
    """Reads, writes, allocates, and frees pages of one database file."""

    def __init__(
        self,
        fs: TieraFileSystem,
        path: str,
        create: bool = False,
        ctx: Optional[RequestContext] = None,
    ):
        self.fs = fs
        self.path = path
        if create or not fs.exists(path):
            self.file = fs.open(path, "w+")
            self.page_count = 1
            self.freelist_head = NO_PAGE
            self.root_page = NO_PAGE
            self.row_count = 0
            self._write_header(ctx)
        else:
            self.file = fs.open(path, "r+")
            self._read_header(ctx)

    # -- header --------------------------------------------------------------

    def _read_header(self, ctx: Optional[RequestContext]) -> None:
        self.file.seek(0)
        raw = self.file.read(PAGE_SIZE, ctx=ctx)
        if len(raw) < _HEADER.size:
            raise CorruptPageError(f"{self.path}: truncated header")
        magic, page_count, freelist, root, rows = _HEADER.unpack_from(raw, 0)
        if magic != MAGIC:
            raise CorruptPageError(f"{self.path}: bad magic {magic!r}")
        self.page_count = page_count
        self.freelist_head = freelist
        self.root_page = root
        self.row_count = rows

    def _write_header(self, ctx: Optional[RequestContext]) -> None:
        raw = bytearray(PAGE_SIZE)
        _HEADER.pack_into(
            raw, 0, MAGIC, self.page_count, self.freelist_head,
            self.root_page, self.row_count,
        )
        self.file.seek(0)
        self.file.write(bytes(raw), ctx=ctx)

    def sync_header(self, ctx: Optional[RequestContext] = None) -> None:
        self._write_header(ctx)

    # -- page IO -----------------------------------------------------------------

    def read_page(self, page_no: int, ctx: Optional[RequestContext] = None) -> bytes:
        if not 0 < page_no < self.page_count:
            raise CorruptPageError(f"{self.path}: page {page_no} out of range")
        self.file.seek(page_no * PAGE_SIZE)
        data = self.file.read(PAGE_SIZE, ctx=ctx)
        if len(data) < PAGE_SIZE:
            data = data + b"\x00" * (PAGE_SIZE - len(data))
        return data

    def write_page(
        self, page_no: int, data: bytes, ctx: Optional[RequestContext] = None
    ) -> None:
        if len(data) != PAGE_SIZE:
            raise ValueError(f"page must be exactly {PAGE_SIZE} bytes")
        if not 0 < page_no < self.page_count:
            raise CorruptPageError(f"{self.path}: page {page_no} out of range")
        self.file.seek(page_no * PAGE_SIZE)
        self.file.write(data, ctx=ctx)

    # -- allocation ------------------------------------------------------------------

    def allocate_page(self, ctx: Optional[RequestContext] = None) -> int:
        """Take a page from the freelist, or grow the file."""
        if self.freelist_head != NO_PAGE:
            page_no = self.freelist_head
            raw = self.read_page(page_no, ctx=ctx)
            (self.freelist_head,) = struct.unpack_from("<Q", raw, 0)
            return page_no
        page_no = self.page_count
        self.page_count += 1
        self.file.seek(page_no * PAGE_SIZE)
        self.file.write(b"\x00" * PAGE_SIZE, ctx=ctx)
        return page_no

    def free_page(self, page_no: int, ctx: Optional[RequestContext] = None) -> None:
        raw = bytearray(PAGE_SIZE)
        struct.pack_into("<Q", raw, 0, self.freelist_head)
        self.write_page(page_no, bytes(raw), ctx=ctx)
        self.freelist_head = page_no

    # -- durability -------------------------------------------------------------------

    def flush(self, ctx: Optional[RequestContext] = None) -> None:
        self.file.flush(ctx=ctx)

    def close(self, ctx: Optional[RequestContext] = None) -> None:
        self._write_header(ctx)
        self.file.close(ctx=ctx)
