"""The §4.1 deployments: MySQL on EBS, on Tiera instances, in memory.

Each builder assembles one complete stack — cluster, Tiera instance,
FUSE-gateway file system, minidb — matching a deployment the paper
benchmarks:

* **MySQL On EBS** — a single EBS tier; the EC2 instance's OS buffer
  cache sits between the database and the volume (this cache is why the
  paper's read-only gains are smaller than read-write ones).
* **MemcachedReplicated** — two Memcached tiers in different AZs,
  both written before acknowledging.
* **MemcachedEBS** — write-through Memcached + EBS.
* **MemcachedS3** — a small co-located Memcached LRU cache over S3
  (the §4.1.1 cost-optimised instance).
* **Memory Engine** — MySQL's Memory engine: no Tiera, no files,
  table-level locks (the ≈0.15 TPS baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.minidb.database import Database
from repro.core.actions import INSERT
from repro.core.events import ActionEvent
from repro.core.instance import DROP, TieraInstance
from repro.core.policy import Policy, Rule
from repro.core.responses import Copy, Retrieve, Store
from repro.core.selectors import InsertObject
from repro.core.server import TieraServer
from repro.core.templates import (
    memcached_ebs_instance,
    memcached_replicated_instance,
)
from repro.core.conditions import AttrRef, Comparison, Literal, Not
from repro.core.units import parse_size
from repro.fs.cache import PageCache
from repro.fs.filesystem import TieraFileSystem
from repro.fs.rawfs import RawDeviceFileSystem
from repro.simcloud.pricing import PriceBook
from repro.simcloud.services.blockstore import SimBlockVolume
from repro.simcloud.cluster import Cluster
from repro.simcloud.pricing import CostMeter
from repro.tiers.registry import TierRegistry

#: MySQL buffer pool: the paper uses stock MySQL config on an
#: m3.medium.  256 pages (1 MB) against the ~10 MB sbtest table keeps
#: the pool:data ratio of the paper's caches-stop-helping regime.
DEFAULT_POOL_PAGES = 256

#: The EC2 instance's OS buffer cache available to a direct-EBS
#: deployment (the Tiera/FUSE path bypasses it).
DEFAULT_OS_CACHE = "2M"


@dataclass
class Deployment:
    """One assembled benchmark stack."""

    name: str
    cluster: Cluster
    meter: CostMeter
    db: Database
    instance: Optional[TieraInstance] = None
    server: Optional[TieraServer] = None
    fs: object = None
    #: for stacks without a Tiera instance (raw EBS, memory engine)
    cost_override: Optional[float] = None
    volume: Optional[SimBlockVolume] = None

    @property
    def clock(self):
        return self.cluster.clock

    def monthly_cost(self) -> float:
        if self.cost_override is not None:
            return self.cost_override
        if self.instance is None:
            return 0.0
        return self.instance.monthly_cost()


def _stack(seed: int):
    cluster = Cluster(seed=seed)
    meter = CostMeter()
    registry = TierRegistry(cluster, meter=meter)
    return cluster, meter, registry


def mysql_on_ebs(
    ebs_size: str = "8G",
    pool_pages: int = DEFAULT_POOL_PAGES,
    os_cache: str = DEFAULT_OS_CACHE,
    seed: int = 2014,
) -> Deployment:
    """The standard cloud deployment: MySQL on a non-root EBS volume.

    No middleware in this stack: the database talks to the volume
    through :class:`~repro.fs.rawfs.RawDeviceFileSystem` — kernel page
    cache, request coalescing, and all — exactly the baseline the paper
    compares against.
    """
    cluster, meter, _ = _stack(seed)
    node = cluster.add_node("mysql-host")
    volume = SimBlockVolume(
        name="ebs-volume",
        node=node,
        clock=cluster.clock,
        capacity=parse_size(ebs_size),
        rng=cluster.rng,
        meter=meter,
    )
    fs = RawDeviceFileSystem(
        volume, page_cache=PageCache(parse_size(os_cache), obs=cluster.obs)
    )
    db = Database(fs, "sbtest", buffer_pool_pages=pool_pages)
    dep = Deployment("MySQL On EBS", cluster, meter, db, None, None, fs)
    dep.cost_override = PriceBook().monthly_storage_cost("ebs", parse_size(ebs_size))
    dep.volume = volume
    return dep


def mysql_on_memcached_replicated(
    mem: str = "512M",
    pool_pages: int = DEFAULT_POOL_PAGES,
    seed: int = 2014,
) -> Deployment:
    """Tiera MemcachedReplicated: both AZ replicas written before ack."""
    cluster, meter, registry = _stack(seed)
    instance = memcached_replicated_instance(registry, mem=mem)
    server = TieraServer(instance)
    fs = TieraFileSystem(server)  # FUSE path: no OS cache
    db = Database(fs, "sbtest", buffer_pool_pages=pool_pages)
    return Deployment(
        "Tiera MemcachedReplicated", cluster, meter, db, instance, server, fs
    )


def mysql_on_memcached_ebs(
    mem: str = "512M",
    ebs: str = "8G",
    pool_pages: int = DEFAULT_POOL_PAGES,
    seed: int = 2014,
) -> Deployment:
    """Tiera MemcachedEBS: write-through to EBS, reads from Memcached."""
    cluster, meter, registry = _stack(seed)
    instance = memcached_ebs_instance(registry, mem=mem, ebs=ebs)
    server = TieraServer(instance)
    fs = TieraFileSystem(server)
    db = Database(fs, "sbtest", buffer_pool_pages=pool_pages)
    return Deployment(
        "Tiera MemcachedEBS", cluster, meter, db, instance, server, fs
    )


def mysql_on_memcached_s3(
    mem: str = "1M",
    pool_pages: int = DEFAULT_POOL_PAGES,
    seed: int = 2014,
) -> Deployment:
    """Tiera MemcachedS3 (§4.1.1 cost optimisation): a small co-located
    Memcached LRU cache over S3.  The cache is deliberately not large
    enough for the database; S3 is the persistent store."""
    cluster, meter, registry = _stack(seed)
    cache = registry.create(
        "Memcached", tier_name="tier1", size=parse_size(mem), colocated=True
    )
    s3 = registry.create("S3", tier_name="tier2", size=None)
    not_cached = Not(
        Comparison("==", AttrRef(("insert", "object", "location")), Literal("tier1"))
    )
    instance = TieraInstance(
        name="MemcachedS3",
        tiers=[cache, s3],
        policy=Policy([
            Rule(
                ActionEvent(INSERT),
                [Store(InsertObject(), "tier1"), Copy(InsertObject(), "tier2")],
                name="cache-and-persist",
            ),
            Rule(
                ActionEvent("get", guard=not_cached),
                [Retrieve(InsertObject(), promote_to="tier1")],
                name="promote-on-miss",
            ),
        ]),
        clock=cluster.clock,
    )
    instance.eviction_chain["tier1"] = DROP
    server = TieraServer(instance)
    fs = TieraFileSystem(server)
    db = Database(fs, "sbtest", buffer_pool_pages=pool_pages)
    return Deployment(
        "Tiera MemcachedS3", cluster, meter, db, instance, server, fs
    )


def mysql_memory_engine(seed: int = 2014) -> Deployment:
    """MySQL Memory Engine: tables in one node's RAM, table locks only."""
    cluster, meter, _ = _stack(seed)
    db = Database(None, "sbtest", engine="memory")
    return Deployment("MySQL Memory Engine", cluster, meter, db)
