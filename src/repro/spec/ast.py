"""AST nodes produced by the spec parser.

Deliberately close to the surface syntax: conditions and values stay as
small expression trees; the compiler (not the parser) decides what an
event expression *means* (action vs timer vs threshold) and which
response class a call maps to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


# -- value/condition expressions ------------------------------------------------


@dataclass
class PathExpr:
    """A dotted path: ``insert.object.dirty``, ``tier1.filled``."""

    parts: Tuple[str, ...]

    def dotted(self) -> str:
        return ".".join(self.parts)


@dataclass
class LiteralExpr:
    """A literal with its unit already applied.

    ``unit`` records the surface flavour: ``None`` (plain), ``size``
    (bytes), ``percent`` (fraction), ``bandwidth`` (bytes/sec),
    ``string``, ``bool``.
    """

    value: object
    unit: Optional[str] = None


@dataclass
class CompareExpr:
    op: str
    lhs: "Expr"
    rhs: "Expr"


@dataclass
class BoolExpr:
    """``&&`` / ``||`` over two or more operands."""

    op: str  # "and" | "or"
    parts: Tuple["Expr", ...]


@dataclass
class CallExpr:
    """A call in expression position: ``heat.hot(key)``.

    ``func`` is the (possibly dotted) callee path; ``args`` are
    positional expressions.  Only a handful of built-in predicates
    accept this form — the compiler validates the callee.
    """

    func: Tuple[str, ...]
    args: Tuple["Expr", ...]


Expr = object  # PathExpr | LiteralExpr | CompareExpr | BoolExpr | CallExpr


# -- statements inside response blocks ----------------------------------------


@dataclass
class CallStmt:
    """``store(what: insert.object, to: tier1);``"""

    name: str
    args: Dict[str, Expr]
    line: int = field(default=0, compare=False)


@dataclass
class AssignStmt:
    """``insert.object.dirty = true;``"""

    target: PathExpr
    value: Expr
    line: int = field(default=0, compare=False)


@dataclass
class IfStmt:
    """``if (cond) { ... } else { ... }``"""

    condition: Expr
    then: List["Stmt"] = field(default_factory=list)
    otherwise: List["Stmt"] = field(default_factory=list)
    line: int = field(default=0, compare=False)


Stmt = object  # CallStmt | AssignStmt | IfStmt


# -- declarations ------------------------------------------------------------------


@dataclass
class TierDecl:
    """``tier1: { name: Memcached, size: 5G };``"""

    tier_name: str
    product: str
    size: Optional[int]
    zone: Optional[str] = None
    line: int = field(default=0, compare=False)


@dataclass
class EventDecl:
    """``[background] event(<expr>) : response { <stmts> }``"""

    expr: Expr
    body: List[Stmt]
    background: bool = False
    line: int = field(default=0, compare=False)


@dataclass
class Param:
    """A formal parameter: ``time t`` (type then name) or bare ``t``."""

    name: str
    type_name: Optional[str] = None


@dataclass
class InstanceSpec:
    """A whole ``Tiera Name(params) { ... }`` declaration."""

    name: str
    params: List[Param]
    tiers: List[TierDecl]
    events: List[EventDecl]
