"""Figure 13 / Table 3: durability vs performance vs cost.

Paper setup: two instances — High Durability (Memcached + immediate
EBS backup + 2-minute S3 pushes) and Low Durability (Memcached +
2-minute S3 pushes only) — under a YCSB 50/50 read/write uniform
workload of 4 KB records.

Paper result: High Durability pays higher write latency and monthly
cost for a near-zero loss window; Low Durability gets the best write
latency but can lose up to the last 2 minutes of updates.
"""

from __future__ import annotations

from repro.bench.report import format_table, ms
from repro.bench.runner import run_closed_loop
from repro.core.server import TieraServer
from repro.core.templates import high_durability_instance, low_durability_instance
from repro.simcloud.cluster import Cluster
from repro.simcloud.resources import RequestContext
from repro.tiers.registry import TierRegistry
from repro.workloads.ycsb import mixed_50_50

RECORDS = 1_000      # 4 KB each → ~4 MB, within the 100 MB tiers
CLIENTS = 8
DURATION = 30.0
WARMUP = 8.0
PUSH_INTERVAL = 120.0


def _measure(builder, seed):
    cluster = Cluster(seed=seed)
    registry = TierRegistry(cluster)
    instance = builder(registry)
    server = TieraServer(instance)
    workload = mixed_50_50(server, RECORDS, seed=3)
    ctx = RequestContext(cluster.clock)
    workload.load(ctx=ctx)
    cluster.clock.run_until(ctx.time)
    result = run_closed_loop(
        cluster.clock, clients=CLIENTS, duration=DURATION,
        op_fn=workload, warmup=WARMUP,
    )
    return instance, result


def run_figure13():
    rows = []
    for name, builder, loss_window in (
        (
            "High Durability",
            lambda reg: high_durability_instance(
                reg, mem="100M", ebs="100M", push_interval=PUSH_INTERVAL
            ),
            "~0 s (synchronous EBS)",
        ),
        (
            "Low Durability",
            lambda reg: low_durability_instance(
                reg, mem="100M", push_interval=PUSH_INTERVAL
            ),
            f"{PUSH_INTERVAL:.0f} s (S3 push window)",
        ),
    ):
        instance, result = _measure(builder, seed=hash(name) % 1000)
        rows.append(
            [
                name,
                round(ms(result.latencies.mean("read")), 2),
                round(ms(result.latencies.mean("write")), 2),
                round(instance.monthly_cost(), 2),
                loss_window,
            ]
        )
    return rows


def test_fig13_durability(benchmark, emit):
    table = {}

    def experiment():
        table["rows"] = run_figure13()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Figure 13 / Table 3 — latency, cost, and worst-case loss window",
        ["instance", "read (ms)", "write (ms)", "cost $/mo", "loss window"],
        table["rows"],
        note=(
            "Paper: High Durability has higher write latency and cost; "
            "Low Durability trades a 2-minute loss window for the best "
            "write latency.  Reads are Memcached-served in both."
        ),
    )
    emit("fig13_durability", text)
    high, low = table["rows"]
    assert high[2] > low[2]      # high durability writes slower
    assert high[3] > low[3]      # and costs more
    # Reads come from Memcached in both: same order of magnitude.
    assert high[1] < 5.0 and low[1] < 5.0
