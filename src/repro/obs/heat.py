"""Workload heat telemetry: per-object access heat and hot-key detection.

The placement decisions Tiera's policies make (promote, write back,
evict) are only as good as what the system can *see* about its own
workload.  This module is that measurement layer:

* a :class:`HeatTracker` recording per-object access statistics —
  windowed access frequency (EWMA over configurable decay windows),
  last-access recency, size class, and read/write mix — fed by hooks
  in the instance data path and the server's op loop;
* a bounded-memory **Space-Saving** heavy-hitter sketch
  (:class:`SpaceSavingSketch`) surfacing the top-k hot set with O(k)
  state regardless of keyspace size, with deterministic tie-breaking
  so same-seed runs stay byte-identical;
* per-tier **occupancy/utilization timelines** sampled on the virtual
  clock at record boundaries (never by scheduling timers, so enabling
  the tracker cannot move a simulated timestamp);
* a workload **characterizer** estimating zipfian skew (log-log slope
  of the sketch's count-vs-rank curve) and hot-set churn (turnover of
  the top-k between samples).

Like every pillar of :mod:`repro.obs`, the tracker obeys the Figure 18
observer-effect rule: recording never touches a ``RequestContext``, a
resource, or an RNG.  It is inert (and near-free) until
:meth:`HeatTracker.enable` is called.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.simcloud.clock import Clock

#: EWMA decay windows, in virtual seconds (short- and long-horizon heat).
DEFAULT_WINDOWS = (60.0, 300.0)

#: Space-Saving sketch capacity: the hot set is read from the top of
#: these k monitored counters.
DEFAULT_TOP_K = 32

#: Per-object stat table cap; least-recently-accessed entries fall off.
DEFAULT_MAX_OBJECTS = 4096

#: Virtual seconds between occupancy/characterizer samples.
DEFAULT_SAMPLE_INTERVAL = 5.0

#: Guaranteed count (count − error) before a sketch entry counts as hot.
DEFAULT_HOT_MIN = 4

#: How many occupancy samples the timeline retains.
DEFAULT_TIMELINE_CAPACITY = 512

#: How many trailing timeline samples a summary carries.
SUMMARY_TIMELINE_SAMPLES = 20

#: Upper bounds of the size classes, in bytes (last class is open).
SIZE_CLASS_BOUNDS: Tuple[Tuple[int, str], ...] = (
    (1024, "<1K"),
    (4 * 1024, "1K-4K"),
    (16 * 1024, "4K-16K"),
    (64 * 1024, "16K-64K"),
    (1024 * 1024, "64K-1M"),
)
SIZE_CLASS_OVERFLOW = ">1M"


def size_class(size: Optional[int]) -> str:
    """The histogram class a payload size falls in (``?`` when unknown)."""
    if size is None:
        return "?"
    for bound, label in SIZE_CLASS_BOUNDS:
        if size < bound:
            return label
    return SIZE_CLASS_OVERFLOW


class SpaceSavingSketch:
    """Metwally et al.'s Space-Saving top-k sketch.

    Holds at most ``capacity`` monitored ``(count, error)`` counters.
    A key already monitored increments in place; an unmonitored key
    replaces the entry with the **smallest count** (ties broken by the
    lexicographically smallest key, so eviction order — and therefore
    every downstream snapshot — is a pure function of the input
    stream), inheriting that count as its overestimation ``error``.

    Guarantees: every key with true frequency > N/capacity is present,
    and for each entry ``count − error ≤ true ≤ count``.
    """

    def __init__(self, capacity: int = DEFAULT_TOP_K):
        if capacity < 1:
            raise ValueError("sketch capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[str, List[int]] = {}  # key -> [count, error]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def observe(self, key: str) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            entry[0] += 1
            return
        if len(self._entries) < self.capacity:
            self._entries[key] = [1, 0]
            return
        victim = min(
            self._entries.items(), key=lambda item: (item[1][0], item[0])
        )
        min_count = victim[1][0]
        del self._entries[victim[0]]
        self._entries[key] = [min_count + 1, min_count]

    def count(self, key: str) -> int:
        entry = self._entries.get(key)
        return entry[0] if entry else 0

    def error(self, key: str) -> int:
        entry = self._entries.get(key)
        return entry[1] if entry else 0

    def top(self, n: Optional[int] = None) -> List[Tuple[str, int, int]]:
        """``(key, count, error)`` by descending count (key tie-break)."""
        ranked = sorted(
            ((key, c, e) for key, (c, e) in self._entries.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked if n is None else ranked[:n]

    def to_dict(self) -> List[Dict[str, object]]:
        return [
            {"key": key, "count": count, "error": error}
            for key, count, error in self.top()
        ]


def estimate_skew(counts: Sequence[int]) -> float:
    """Zipf exponent estimate from a descending top-k count profile.

    Fits the slope of ``ln(count)`` against ``ln(rank)`` by least
    squares; under a zipfian workload counts fall as ``rank^-θ``, so
    the negated slope estimates θ.  Returns 0.0 when the profile is
    too short or flat to say anything.
    """
    points = [
        (math.log(rank), math.log(count))
        for rank, count in enumerate(counts, start=1)
        if count > 0
    ]
    if len(points) < 2:
        return 0.0
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var_x = sum((x - mean_x) ** 2 for x, _ in points)
    if var_x == 0.0:
        return 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return round(max(0.0, -(cov / var_x)), 4)


class _ObjectHeat:
    """Per-object access statistics (one row of the tracked table)."""

    __slots__ = ("reads", "writes", "last_access", "last_size", "rates")

    def __init__(self, windows: Tuple[float, ...]):
        self.reads = 0
        self.writes = 0
        self.last_access = 0.0
        self.last_size: Optional[int] = None
        self.rates = [0.0] * len(windows)

    def touch(
        self, op: str, size: Optional[int], now: float,
        windows: Tuple[float, ...],
    ) -> None:
        dt = now - self.last_access
        for i, window in enumerate(windows):
            decay = math.exp(-dt / window) if self.rates[i] else 0.0
            self.rates[i] = 1.0 / window + self.rates[i] * decay
        if op == "get":
            self.reads += 1
        else:
            self.writes += 1
        self.last_access = now
        if size is not None:
            self.last_size = size

    def to_dict(self, windows: Tuple[float, ...]) -> Dict[str, object]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "last_access": round(self.last_access, 6),
            "size": self.last_size,
            "size_class": size_class(self.last_size),
            "rates": {
                f"{int(w)}s": round(rate, 9)
                for w, rate in zip(windows, self.rates)
            },
        }


class HeatTracker:
    """Measures workload heat on the virtual clock.

    Construction is free and the tracker starts disabled: ``record``
    returns immediately until :meth:`enable` configures it, so every
    stack carries one without paying for it (the SLO engine's
    contract).  Enabling creates the ``tiera_heat_*`` metric families
    and registers a registry collector that refreshes the gauges at
    snapshot time.
    """

    def __init__(
        self,
        metrics,
        audit=None,
        clock: Optional[Clock] = None,
    ):
        self.metrics = metrics
        self.audit = audit
        self.clock = clock
        self.enabled = False
        self.windows: Tuple[float, ...] = DEFAULT_WINDOWS
        self.top_k = DEFAULT_TOP_K
        self.max_objects = DEFAULT_MAX_OBJECTS
        self.sample_interval = DEFAULT_SAMPLE_INTERVAL
        self.hot_min = DEFAULT_HOT_MIN
        #: live tier occupancy source, installed by the instance:
        #: ``() -> [(tier, used, capacity), …]``.
        self.occupancy_source: Optional[Callable[[], List[Tuple]]] = None
        self._sketch = SpaceSavingSketch(self.top_k)
        self._objects: "OrderedDict[str, _ObjectHeat]" = OrderedDict()
        self._tier_ops: Dict[Tuple[str, str], int] = {}
        self._size_classes: Dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        self.deletes = 0
        self.timeline: Deque[Dict[str, object]] = deque(
            maxlen=DEFAULT_TIMELINE_CAPACITY
        )
        self.churn = 0.0
        self._last_hot: Optional[frozenset] = None
        self._next_sample: Optional[float] = None
        self._last_seen = 0.0
        self._collector_installed = False

    # -- lifecycle ----------------------------------------------------------

    def enable(
        self,
        windows: Optional[Sequence[float]] = None,
        top_k: Optional[int] = None,
        max_objects: Optional[int] = None,
        sample_interval: Optional[float] = None,
        hot_min: Optional[int] = None,
    ) -> "HeatTracker":
        """Turn the tracker on (idempotent; reconfigures in place)."""
        if windows is not None:
            self.windows = tuple(float(w) for w in windows)
            if not self.windows or any(w <= 0 for w in self.windows):
                raise ValueError("decay windows must be positive")
        if top_k is not None:
            self.top_k = int(top_k)
            self._sketch = SpaceSavingSketch(self.top_k)
        if max_objects is not None:
            self.max_objects = int(max_objects)
        if sample_interval is not None:
            if sample_interval <= 0:
                raise ValueError("sample_interval must be positive")
            self.sample_interval = float(sample_interval)
        if hot_min is not None:
            self.hot_min = int(hot_min)
        self.enabled = True
        self._install_metrics()
        return self

    def _install_metrics(self) -> None:
        m = self.metrics
        self._m_accesses = m.counter(
            "tiera_heat_accesses_total",
            "Client object accesses seen by the heat tracker",
        )
        self._m_tier_accesses = m.counter(
            "tiera_heat_tier_accesses_total",
            "Tier data-path touches seen by the heat tracker",
        )
        self._m_size_class = m.counter(
            "tiera_heat_size_class_total",
            "Accesses by payload size class",
        )
        self._m_tracked = m.gauge(
            "tiera_heat_tracked_objects",
            "Objects with live per-object heat statistics",
        )
        self._m_hot = m.gauge(
            "tiera_heat_hot_count",
            "Sketch count of each currently-hot key",
        )
        self._m_skew = m.gauge(
            "tiera_heat_skew", "Estimated zipfian skew of the workload"
        )
        self._m_churn = m.gauge(
            "tiera_heat_churn", "Hot-set turnover between samples"
        )
        self._m_util = m.gauge(
            "tiera_heat_tier_utilization",
            "Tier fill fraction at the last occupancy sample",
        )
        if not self._collector_installed:
            m.add_collector(self._collect)
            self._collector_installed = True

    def shutdown(self) -> None:
        if self._collector_installed:
            self.metrics.remove_collector(self._collect)
            self._collector_installed = False

    # -- recording ----------------------------------------------------------

    def _now(self, at: Optional[float]) -> float:
        if at is None:
            at = self.clock.now() if self.clock is not None else self._last_seen
        self._last_seen = max(self._last_seen, at)
        return self._last_seen

    def record(
        self,
        op: str,
        key: str,
        size: Optional[int] = None,
        tier: Optional[str] = None,
        at: Optional[float] = None,
    ) -> None:
        """One client-level object access (the per-op feed point)."""
        if not self.enabled:
            return
        now = self._now(at)
        if op == "get":
            self.reads += 1
        elif op == "delete":
            self.deletes += 1
        else:
            self.writes += 1
        self._m_accesses.inc(op=op)
        cls = size_class(size)
        self._size_classes[cls] = self._size_classes.get(cls, 0) + 1
        self._m_size_class.inc(**{"class": cls})
        self._sketch.observe(key)
        stats = self._objects.get(key)
        if stats is None:
            stats = self._objects[key] = _ObjectHeat(self.windows)
        else:
            self._objects.move_to_end(key)
        stats.touch(op, size, now, self.windows)
        while len(self._objects) > self.max_objects:
            self._objects.popitem(last=False)
        if tier is not None:
            self._record_tier(op, tier)
        self._maybe_sample(now)

    def record_tier(
        self, op: str, tier: str, at: Optional[float] = None
    ) -> None:
        """One tier data-path touch (the instance-level feed point)."""
        if not self.enabled:
            return
        self._now(at)
        self._record_tier(op, tier)

    def _record_tier(self, op: str, tier: str) -> None:
        self._tier_ops[(tier, op)] = self._tier_ops.get((tier, op), 0) + 1
        self._m_tier_accesses.inc(tier=tier, op=op)

    # -- sampling / characterizer -------------------------------------------

    def _maybe_sample(self, now: float) -> None:
        if self._next_sample is None:
            self._next_sample = now + self.sample_interval
            self.sample(now)
        elif now >= self._next_sample:
            self.sample(now)
            self._next_sample = now + self.sample_interval

    def sample(self, now: float) -> None:
        """Take one occupancy + characterizer sample at virtual ``now``."""
        tiers: Dict[str, Dict[str, object]] = {}
        if self.occupancy_source is not None:
            for name, used, capacity in self.occupancy_source():
                utilization = (
                    round(used / capacity, 6) if capacity and capacity > 0
                    else None
                )
                tiers[name] = {
                    "used": used,
                    "capacity": capacity,
                    "utilization": utilization,
                }
        self.timeline.append({"time": round(now, 6), "tiers": tiers})
        hot = frozenset(key for key, _, _ in self._hot_entries())
        if self._last_hot is not None and self._last_hot:
            stable = len(hot & self._last_hot)
            self.churn = round(1.0 - stable / len(self._last_hot), 4)
        self._last_hot = hot

    # -- queries ------------------------------------------------------------

    def _hot_entries(self) -> List[Tuple[str, int, int]]:
        return [
            (key, count, error)
            for key, count, error in self._sketch.top(self.top_k)
            if count - error >= self.hot_min
        ]

    def hot_keys(self) -> List[str]:
        """Currently-hot keys, hottest first."""
        return [key for key, _, _ in self._hot_entries()]

    def is_hot(self, key: str) -> bool:
        if not self.enabled:
            return False
        count = self._sketch.count(key)
        return bool(count) and count - self._sketch.error(key) >= self.hot_min

    def heat_rate(self, key: str, now: Optional[float] = None) -> float:
        """Shortest-window EWMA access rate of ``key`` (0.0 if untracked).

        Rates are stored as of the key's last access; pass ``now`` to
        decay the stored value to the present — an idle key's heat must
        fall even though nothing touches it (the placement engine's
        demotion scores depend on this).
        """
        stats = self._objects.get(key)
        if stats is None:
            return 0.0
        rate = stats.rates[0]
        if now is not None and rate and now > stats.last_access:
            rate *= math.exp(-(now - stats.last_access) / self.windows[0])
        return rate

    def last_access(self, key: str) -> float:
        """Virtual time of ``key``'s latest access (0.0 if untracked)."""
        stats = self._objects.get(key)
        return stats.last_access if stats is not None else 0.0

    def skew(self) -> float:
        return estimate_skew([c for _, c, _ in self._sketch.top()])

    def tier_stats(self, tier: str) -> Dict[str, object]:
        """Measured heat attributes of one tier (spec-condition surface)."""
        reads = self._tier_ops.get((tier, "get"), 0)
        writes = (
            self._tier_ops.get((tier, "put"), 0)
            + self._tier_ops.get((tier, "delete"), 0)
        )
        total = reads + writes
        out: Dict[str, object] = {
            "reads": reads,
            "writes": writes,
            "accesses": total,
            "read_fraction": round(reads / total, 6) if total else 0.0,
            "write_fraction": round(writes / total, 6) if total else 0.0,
            "used": 0,
            "capacity": 0,
            "utilization": 0.0,
        }
        if self.timeline:
            latest = self.timeline[-1]["tiers"].get(tier)
            if latest:
                out["used"] = latest["used"]
                out["capacity"] = latest["capacity"]
                if latest["utilization"] is not None:
                    out["utilization"] = latest["utilization"]
        return out

    def global_stats(self) -> Dict[str, object]:
        """Workload-level heat attributes (spec-condition surface)."""
        total = self.reads + self.writes + self.deletes
        return {
            "accesses": total,
            "reads": self.reads,
            "writes": self.writes + self.deletes,
            "read_fraction": round(self.reads / total, 6) if total else 0.0,
            "tracked": len(self._objects),
            "hot_count": len(self._hot_entries()),
            "skew": self.skew(),
            "churn": self.churn,
        }

    def summary(self, limit: Optional[int] = None) -> Dict[str, object]:
        """The full JSON-able heat snapshot (deterministic key order)."""
        if not self.enabled:
            return {"enabled": False}
        hot = []
        for key, count, error in self._hot_entries()[:limit]:
            entry: Dict[str, object] = {
                "key": key,
                "count": count,
                "error": error,
                "guaranteed": count - error,
            }
            stats = self._objects.get(key)
            if stats is not None:
                entry.update(stats.to_dict(self.windows))
            hot.append(entry)
        tier_names = sorted({tier for tier, _ in self._tier_ops})
        if self.timeline:
            tier_names = sorted(
                set(tier_names) | set(self.timeline[-1]["tiers"])
            )
        total = self.reads + self.writes + self.deletes
        return {
            "enabled": True,
            "config": {
                "windows": list(self.windows),
                "top_k": self.top_k,
                "max_objects": self.max_objects,
                "sample_interval": self.sample_interval,
                "hot_min": self.hot_min,
            },
            "accesses": {
                "total": total,
                "reads": self.reads,
                "writes": self.writes,
                "deletes": self.deletes,
                "read_fraction": (
                    round(self.reads / total, 6) if total else 0.0
                ),
            },
            "tracked_objects": len(self._objects),
            "sketch_entries": len(self._sketch),
            "hot": hot,
            "hot_keys": [h["key"] for h in hot],
            "tiers": {name: self.tier_stats(name) for name in tier_names},
            "skew": self.skew(),
            "churn": self.churn,
            "size_classes": dict(sorted(self._size_classes.items())),
            "timeline": {
                "samples": len(self.timeline),
                "interval": self.sample_interval,
                "recent": list(self.timeline)[-SUMMARY_TIMELINE_SAMPLES:],
            },
        }

    # -- registry collector --------------------------------------------------

    def _collect(self, registry) -> None:
        if not self.enabled:
            return
        self._m_tracked.set(len(self._objects))
        self._m_skew.set(self.skew())
        self._m_churn.set(self.churn)
        for key, count, _ in self._hot_entries():
            self._m_hot.set(count, key=key)
        if self.timeline:
            for name, state in self.timeline[-1]["tiers"].items():
                if state["utilization"] is not None:
                    self._m_util.set(state["utilization"], tier=name)


#: Sparkline glyphs for the occupancy timeline, coldest to fullest.
_SPARK_LEVELS = " .:-=+*#%@"

#: Width of the per-tier occupancy gauge, in cells.
_GAUGE_WIDTH = 20


def render_report(summary: Dict[str, object], width: int = 40) -> str:
    """The ``repro heat`` text report: hot-key bars, tier occupancy
    gauges, and an ASCII occupancy timeline.  Pure function of the
    summary dict, so same-seed runs render byte-identical reports."""
    if not summary.get("enabled"):
        return "heat tracking is not enabled (pass --enable)"
    acc = summary["accesses"]
    config = summary["config"]
    lines = [
        (
            f"workload heat: {acc['total']} accesses "
            f"({acc['reads']} reads / {acc['writes']} writes / "
            f"{acc['deletes']} deletes), "
            f"{summary['tracked_objects']} objects tracked"
        ),
        (
            f"  skew {summary['skew']:.4f}, churn {summary['churn']:.4f}, "
            f"sketch {summary['sketch_entries']}/{config['top_k']} slots, "
            f"hot_min {config['hot_min']}"
        ),
    ]
    hot = summary["hot"]
    if hot:
        lines.append(f"hot keys ({len(hot)}):")
        peak = max(entry["count"] for entry in hot)
        key_w = max(len(entry["key"]) for entry in hot)
        for entry in hot:
            bar = "#" * max(1, round(width * entry["count"] / peak))
            mix = ""
            if "reads" in entry:
                total = entry["reads"] + entry["writes"]
                pct = 100.0 * entry["reads"] / total if total else 0.0
                mix = f"  r{pct:.0f}% {entry['size_class']}"
            lines.append(
                f"  {entry['key']:<{key_w}}  {entry['count']:>6} "
                f"(err {entry['error']})  {bar:<{width}}{mix}"
            )
    else:
        lines.append("hot keys: none")
    tiers = summary["tiers"]
    if tiers:
        lines.append("tiers:")
        name_w = max(len(name) for name in tiers)
        for name in sorted(tiers):
            stats = tiers[name]
            util = stats.get("utilization")
            if util is None or not stats.get("capacity") or stats["capacity"] <= 0:
                gauge = "unbounded".center(_GAUGE_WIDTH)
                pct = "  ∞ "
            else:
                filled = max(0, min(_GAUGE_WIDTH, round(_GAUGE_WIDTH * util)))
                gauge = "#" * filled + "-" * (_GAUGE_WIDTH - filled)
                pct = f"{util * 100:3.0f}%"
            lines.append(
                f"  {name:<{name_w}}  [{gauge}] {pct}  "
                f"{stats['accesses']} ops, "
                f"r{stats['read_fraction'] * 100:.0f}%"
            )
    recent = summary["timeline"].get("recent") or []
    if recent:
        lines.append(
            f"occupancy timeline (last {len(recent)} samples, "
            f"~{summary['timeline']['interval']:g}s apart):"
        )
        names = sorted({name for s in recent for name in s["tiers"]})
        name_w = max((len(name) for name in names), default=0)
        top = len(_SPARK_LEVELS) - 1
        for name in names:
            cells = []
            for s in recent:
                state = s["tiers"].get(name)
                util = state.get("utilization") if state else None
                if util is None:
                    cells.append("?")
                else:
                    cells.append(_SPARK_LEVELS[min(top, round(util * top))])
            lines.append(f"  {name:<{name_w}}  [{''.join(cells)}]")
    return "\n".join(lines)


def merge_summaries(parts: List[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate per-shard heat summaries into one cluster view.

    Keys route to exactly one shard, so the hot lists are disjoint and
    merge by union → re-rank → truncate; tier traffic and occupancy
    sum across shards; skew is re-estimated from the merged count
    profile and churn is access-weighted.  With a single part the
    input is returned untouched, so a one-shard router's snapshot is
    byte-identical to the direct facade's.
    """
    enabled = [p for p in parts if p.get("enabled")]
    if not enabled:
        return {"enabled": False}
    if len(enabled) == 1:
        return enabled[0]
    first = enabled[0]
    top_k = max(p["config"]["top_k"] for p in enabled)
    hot = sorted(
        (entry for p in enabled for entry in p["hot"]),
        key=lambda e: (-e["count"], e["key"]),
    )[:top_k]
    accesses = {
        field: sum(p["accesses"][field] for p in enabled)
        for field in ("total", "reads", "writes", "deletes")
    }
    accesses["read_fraction"] = (
        round(accesses["reads"] / accesses["total"], 6)
        if accesses["total"] else 0.0
    )
    tiers: Dict[str, Dict[str, object]] = {}
    for p in enabled:
        for name, stats in p["tiers"].items():
            agg = tiers.setdefault(
                name,
                {"reads": 0, "writes": 0, "accesses": 0,
                 "used": 0, "capacity": 0},
            )
            for field in ("reads", "writes", "accesses", "used", "capacity"):
                agg[field] += stats.get(field) or 0
    for stats in tiers.values():
        total = stats["accesses"]
        stats["read_fraction"] = (
            round(stats["reads"] / total, 6) if total else 0.0
        )
        stats["write_fraction"] = (
            round(stats["writes"] / total, 6) if total else 0.0
        )
        stats["utilization"] = (
            round(stats["used"] / stats["capacity"], 6)
            if stats["capacity"] else 0.0
        )
    size_classes: Dict[str, int] = {}
    for p in enabled:
        for cls, n in p["size_classes"].items():
            size_classes[cls] = size_classes.get(cls, 0) + n
    weights = [max(p["accesses"]["total"], 0) for p in enabled]
    weight_sum = sum(weights) or 1
    churn = round(
        sum(p["churn"] * w for p, w in zip(enabled, weights)) / weight_sum, 4
    )
    return {
        "enabled": True,
        "config": dict(first["config"], top_k=top_k),
        "accesses": accesses,
        "tracked_objects": sum(p["tracked_objects"] for p in enabled),
        "sketch_entries": sum(p["sketch_entries"] for p in enabled),
        "hot": hot,
        "hot_keys": [h["key"] for h in hot],
        "tiers": {name: tiers[name] for name in sorted(tiers)},
        "skew": estimate_skew([h["count"] for h in hot]),
        "churn": churn,
        "size_classes": dict(sorted(size_classes.items())),
        "timeline": {
            "samples": sum(p["timeline"]["samples"] for p in enabled),
            "interval": first["timeline"]["interval"],
            # Per-shard sample streams interleave on independent record
            # boundaries; a merged stream would be misleading, so the
            # aggregate view carries counts only.
            "recent": [],
        },
    }


__all__ = [
    "DEFAULT_WINDOWS",
    "DEFAULT_TOP_K",
    "DEFAULT_MAX_OBJECTS",
    "DEFAULT_SAMPLE_INTERVAL",
    "DEFAULT_HOT_MIN",
    "HeatTracker",
    "SpaceSavingSketch",
    "estimate_skew",
    "merge_summaries",
    "render_report",
    "size_class",
]
