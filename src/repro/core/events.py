"""The three event kinds: action, timer, threshold (§2.2, §3).

* :class:`ActionEvent` fires when the application performs an operation
  (insert/delete/get), optionally narrowed to a tier
  (``insert.into == tier1``) and guarded by an extra condition — the
  paper's "events can be combined such that a particular response is
  initiated only when all the conditions hold".
* :class:`TimerEvent` fires every ``interval`` seconds (granularity of
  seconds in the prototype).
* :class:`ThresholdEvent` fires when its condition *becomes* true
  (edge-triggered — "occur when the value of the attribute reaches a
  certain value").  Threshold rules may be foreground (evaluated
  synchronously inside the triggering request) or background
  (evaluated asynchronously), exactly as §3 describes.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import Optional

from repro.core.actions import Action, KINDS
from repro.core.conditions import Condition, EvalScope


class Event(ABC):
    """Base event; concrete kinds below."""


@dataclass
class ActionEvent(Event):
    """Fires on a matching application action.

    ``kind`` is one of ``insert``/``delete``/``get``; ``tier`` narrows to
    actions targeting that tier; ``guard`` is an optional extra
    condition that must also hold.
    """

    kind: str
    tier: Optional[str] = None
    guard: Optional[Condition] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown action kind {self.kind!r}")

    def matches(self, action: Action, scope: EvalScope) -> bool:
        if action.kind != self.kind:
            return False
        if self.tier is not None and action.tier not in (None, self.tier):
            return False
        if self.guard is not None and not self.guard.truthy(scope):
            return False
        return True


@dataclass
class TimerEvent(Event):
    """Fires every ``interval`` seconds (Figure 3's ``event(time=t)``)."""

    interval: float

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("timer interval must be positive")


@dataclass
class ThresholdEvent(Event):
    """Fires when ``condition`` transitions from false to true.

    The transition state lives on the event instance (``_armed``): after
    firing, the event re-arms only once the condition has gone false
    again, so ``tier1.filled == 75%`` does not refire on every
    subsequent insert while the tier stays above the threshold.
    """

    condition: Condition
    background: bool = False
    _armed: bool = field(default=True, repr=False, compare=False)

    def should_fire(self, scope: EvalScope) -> bool:
        holds = self.condition.truthy(scope)
        if holds and self._armed:
            self._armed = False
            return True
        if not holds:
            self._armed = True
        return False

    def reset(self) -> None:
        self._armed = True
