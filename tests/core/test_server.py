"""The PUT/GET application interface layer."""

import pytest

from repro.core.errors import NoSuchObjectError
from repro.core.events import ActionEvent
from repro.core.policy import Rule
from repro.core.responses import Compress, SetAttr, Store
from repro.core.selectors import InsertObject
from repro.core.server import TieraServer
from tests.core.conftest import build_instance


class TestPutGet:
    def test_roundtrip(self, server):
        server.put("k", b"hello")
        assert server.get("k") == b"hello"

    def test_put_returns_latency_context(self, server):
        ctx = server.put("k", b"hello")
        assert ctx.elapsed > 0

    def test_default_placement_is_first_tier(self, server):
        server.put("k", b"hello")
        assert server.stat("k").locations == {"tier1"}

    def test_overwrite_bumps_version(self, server):
        server.put("k", b"v1")
        server.put("k", b"v2")
        assert server.get("k") == b"v2"
        assert server.stat("k").version == 1

    def test_get_missing_raises(self, server):
        with pytest.raises(NoSuchObjectError):
            server.get("ghost")

    def test_get_updates_access_stats(self, server):
        server.put("k", b"v")
        server.get("k")
        server.get("k")
        assert server.stat("k").access_count == 2

    def test_policy_placement_overrides_default(self, registry):
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6), ("tier2", "EBS", 10 ** 7)],
            rules=[
                Rule(
                    ActionEvent("insert"),
                    [Store(InsertObject(), "tier2")],
                    name="to-ebs",
                )
            ],
        )
        server = TieraServer(inst)
        server.put("k", b"v")
        assert server.stat("k").locations == {"tier2"}

    def test_delete(self, server):
        server.put("k", b"v")
        server.delete("k")
        assert not server.contains("k")
        with pytest.raises(NoSuchObjectError):
            server.get("k")

    def test_encrypted_compressed_object_not_inflated(self, registry):
        """GET must not try to unzip ciphertext (regression)."""
        from repro.core.responses import Decrypt, Encrypt

        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[
                Rule(
                    ActionEvent("insert"),
                    [
                        Store(InsertObject(), "tier1"),
                        Compress(InsertObject()),
                        Encrypt(InsertObject(), key="k"),
                    ],
                    name="seal",
                )
            ],
        )
        server = TieraServer(inst)
        payload = b"sensitive " * 300
        server.put("k", payload)
        sealed = server.get("k")  # ciphertext as stored, no unzip
        assert sealed != payload
        from repro.core.conditions import EvalScope
        from repro.core.selectors import NamedObjects
        from repro.simcloud.resources import RequestContext

        Decrypt(NamedObjects("k"), key="k").execute(
            EvalScope(instance=inst), RequestContext(inst.clock)
        )
        assert server.get("k") == payload  # decrypt, then auto-inflate

    def test_compressed_objects_inflate_on_get(self, registry):
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[
                Rule(
                    ActionEvent("insert"),
                    [Store(InsertObject(), "tier1"), Compress(InsertObject())],
                    name="compressing",
                )
            ],
        )
        server = TieraServer(inst)
        payload = b"squeeze me " * 500
        server.put("k", payload)
        assert inst.tiers.get("tier1").used < len(payload)
        assert server.get("k") == payload


class TestTags:
    def test_tags_at_put_time(self, server):
        server.put("k", b"v", tags=("tmp", "page"))
        assert server.stat("k").tags == {"tmp", "page"}

    def test_add_remove_tag(self, server):
        server.put("k", b"v")
        server.add_tag("k", "hot")
        assert server.keys_with_tag("hot") == ["k"]
        server.remove_tag("k", "hot")
        assert server.keys_with_tag("hot") == []

    def test_tag_driven_policy(self, registry):
        """§2.1's example: a "tmp" tag routes to cheap volatile storage."""
        from repro.core.conditions import AttrRef, Comparison, Literal

        guard = Comparison(
            "==", AttrRef(("insert", "object", "tags")), Literal("tmp")
        )
        inst = build_instance(
            registry,
            [("tier1", "EBS", 10 ** 7), ("scratch", "Memcached", 10 ** 6)],
            rules=[
                Rule(
                    ActionEvent("insert", guard=guard),
                    [Store(InsertObject(), "scratch")],
                    name="tmp-to-scratch",
                )
            ],
        )
        server = TieraServer(inst)
        server.put("temp-file", b"x", tags=("tmp",))
        server.put("real-file", b"x")
        assert server.stat("temp-file").locations == {"scratch"}
        assert server.stat("real-file").locations == {"tier1"}

    def test_keys_listing(self, server):
        server.put("b", b"1")
        server.put("a", b"2")
        assert server.keys() == ["a", "b"]


class TestSetAttrThroughPolicy:
    def test_figure3_dirty_assignment(self, registry):
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6)],
            rules=[
                Rule(
                    ActionEvent("insert"),
                    [
                        SetAttr(("insert", "object", "dirty"), True),
                        Store(InsertObject(), "tier1"),
                    ],
                    name="fig3",
                )
            ],
        )
        server = TieraServer(inst)
        server.put("k", b"v")
        assert server.stat("k").dirty is True
