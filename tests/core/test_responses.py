"""Table 1's response catalogue, exercised response by response."""

import zlib

import pytest

from repro.core.actions import Action
from repro.core.conditions import (
    And,
    AttrRef,
    Comparison,
    EvalScope,
    Literal,
    TierFull,
)
from repro.core.errors import UnknownTierError
from repro.core.objects import ObjectMeta, content_checksum
from repro.core.responses import (
    Compress,
    Conditional,
    Copy,
    Decrypt,
    Delete,
    Encrypt,
    Grow,
    Move,
    Retrieve,
    SetAttr,
    Shrink,
    Snapshot,
    Store,
    StoreOnce,
    Uncompress,
)
from repro.core.selectors import InsertObject, NamedObjects, ObjectsWhere, TierOldest


def scope(instance, action=None, obj=None):
    return EvalScope(instance=instance, action=action, obj=obj)


def insert_scope(instance, key, data):
    meta = instance.create_object(key, len(data))
    meta.checksum = content_checksum(data)
    action = Action(kind="insert", key=key, meta=meta, data=data)
    return scope(instance, action)


def put_into(instance, key, data, tier, ctx):
    instance.create_object(key, len(data))
    instance.write_to_tier(key, data, tier, ctx)


class TestStore:
    def test_stores_insert_payload(self, two_tier, ctx):
        s = insert_scope(two_tier, "k", b"hello")
        Store(InsertObject(), "tier1").execute(s, ctx)
        assert two_tier.tiers.get("tier1").contains("k")
        assert two_tier.meta("k").locations == {"tier1"}

    def test_stores_to_multiple_tiers(self, two_tier, ctx):
        s = insert_scope(two_tier, "k", b"hello")
        Store(InsertObject(), ("tier1", "tier2")).execute(s, ctx)
        assert two_tier.meta("k").locations == {"tier1", "tier2"}

    def test_reads_back_existing_object(self, two_tier, ctx):
        put_into(two_tier, "k", b"data", "tier2", ctx)
        Store(NamedObjects("k"), "tier1").execute(scope(two_tier), ctx)
        assert two_tier.tiers.get("tier1").get("k", ctx) == b"data"

    def test_evicts_lru_to_make_room(self, two_tier, ctx):
        # tier1 is 64K; fill it, then store with evict_to=tier2.
        for i in range(4):
            put_into(two_tier, f"old{i}", b"x" * 16384, "tier1", ctx)
        s = insert_scope(two_tier, "new", b"y" * 16384)
        Store(InsertObject(), "tier1", evict_to="tier2").execute(s, ctx)
        assert two_tier.meta("new").locations == {"tier1"}
        assert two_tier.meta("old0").locations == {"tier2"}  # LRU victim


class TestStoreOnce:
    def test_first_copy_stored(self, two_tier, ctx):
        s = insert_scope(two_tier, "a", b"same-bytes")
        StoreOnce(InsertObject(), "tier1").execute(s, ctx)
        assert two_tier.tiers.get("tier1").contains("a")

    def test_duplicate_becomes_alias(self, two_tier, ctx):
        StoreOnce(InsertObject(), "tier1").execute(
            insert_scope(two_tier, "a", b"same-bytes"), ctx
        )
        puts_before = two_tier.tiers.get("tier1").service.op_counts.get("put", 0)
        StoreOnce(InsertObject(), "tier1").execute(
            insert_scope(two_tier, "b", b"same-bytes"), ctx
        )
        puts_after = two_tier.tiers.get("tier1").service.op_counts.get("put", 0)
        assert puts_after == puts_before  # no data written for the dup
        assert two_tier.meta("b").alias_of == "a"
        assert two_tier.meta("a").refcount == 1
        assert two_tier.read_raw("b", ctx) == b"same-bytes"

    def test_distinct_content_stored_separately(self, two_tier, ctx):
        StoreOnce(InsertObject(), "tier1").execute(
            insert_scope(two_tier, "a", b"one"), ctx
        )
        StoreOnce(InsertObject(), "tier1").execute(
            insert_scope(two_tier, "b", b"two"), ctx
        )
        assert two_tier.meta("b").alias_of is None


class TestRetrieve:
    def test_plain_read_touches_recency(self, two_tier, ctx):
        put_into(two_tier, "k", b"v", "tier2", ctx)
        Retrieve(NamedObjects("k")).execute(scope(two_tier), ctx)
        assert two_tier.meta("k").locations == {"tier2"}

    def test_promotion(self, two_tier, ctx):
        put_into(two_tier, "k", b"v", "tier2", ctx)
        Retrieve(NamedObjects("k"), promote_to="tier1").execute(scope(two_tier), ctx)
        assert two_tier.meta("k").locations == {"tier1", "tier2"}

    def test_exclusive_promotion_relocates(self, two_tier, ctx):
        put_into(two_tier, "k", b"v", "tier2", ctx)
        Retrieve(NamedObjects("k"), promote_to="tier1", exclusive=True).execute(
            scope(two_tier), ctx
        )
        assert two_tier.meta("k").locations == {"tier1"}
        assert not two_tier.tiers.get("tier2").contains("k")


class TestCopy:
    def test_copy_clears_dirty_on_durable_landing(self, two_tier, ctx):
        put_into(two_tier, "k", b"v", "tier1", ctx)
        two_tier.meta("k").dirty = True
        Copy(NamedObjects("k"), "tier2").execute(scope(two_tier), ctx)
        assert two_tier.meta("k").locations == {"tier1", "tier2"}
        assert two_tier.meta("k").dirty is False

    def test_copy_to_volatile_keeps_dirty(self, registry, ctx):
        from tests.core.conftest import build_instance

        inst = build_instance(
            registry,
            [("m1", "Memcached", 10 ** 6), ("m2", "Memcached", 10 ** 6)],
        )
        put_into(inst, "k", b"v", "m1", ctx)
        inst.meta("k").dirty = True
        Copy(NamedObjects("k"), "m2").execute(scope(inst), ctx)
        assert inst.meta("k").dirty is True

    def test_bandwidth_cap_paces_transfers(self, two_tier, ctx):
        for i in range(3):
            put_into(two_tier, f"k{i}", b"x" * 10240, "tier1", ctx)
        capped = Copy(
            ObjectsWhere(
                Comparison("==", AttrRef(("object", "location")), Literal("tier1"))
            ),
            "tier2",
            bandwidth="10KB/s",
        )
        start = ctx.time
        capped.execute(scope(two_tier), ctx)
        # 30 KB at 10 KB/s: the last transfer cannot begin before t+2s.
        assert ctx.time - start >= 2.0

    def test_uncapped_copy_is_fast(self, two_tier, ctx):
        for i in range(3):
            put_into(two_tier, f"k{i}", b"x" * 10240, "tier1", ctx)
        Copy(
            ObjectsWhere(
                Comparison("==", AttrRef(("object", "location")), Literal("tier1"))
            ),
            "tier2",
        ).execute(scope(two_tier), ctx)
        assert ctx.elapsed < 1.0


class TestMove:
    def test_move_removes_source(self, two_tier, ctx):
        put_into(two_tier, "k", b"v", "tier1", ctx)
        Move(NamedObjects("k"), "tier2").execute(scope(two_tier), ctx)
        assert two_tier.meta("k").locations == {"tier2"}
        assert not two_tier.tiers.get("tier1").contains("k")

    def test_move_tier_oldest(self, two_tier, ctx):
        put_into(two_tier, "a", b"1", "tier1", ctx)
        put_into(two_tier, "b", b"2", "tier1", ctx)
        Move(TierOldest("tier1"), "tier2").execute(scope(two_tier), ctx)
        assert two_tier.meta("a").locations == {"tier2"}
        assert two_tier.meta("b").locations == {"tier1"}


class TestDelete:
    def test_delete_from_specific_tier(self, two_tier, ctx):
        put_into(two_tier, "k", b"v", "tier1", ctx)
        two_tier.write_to_tier("k", b"v", "tier2", ctx)
        Delete(NamedObjects("k"), tiers=("tier1",)).execute(scope(two_tier), ctx)
        assert two_tier.meta("k").locations == {"tier2"}

    def test_delete_everywhere_forgets_object(self, two_tier, ctx):
        put_into(two_tier, "k", b"v", "tier1", ctx)
        Delete(NamedObjects("k")).execute(scope(two_tier), ctx)
        assert not two_tier.has_object("k")


class TestEncryptDecrypt:
    def test_roundtrip(self, two_tier, ctx):
        put_into(two_tier, "k", b"secret data", "tier1", ctx)
        Encrypt(NamedObjects("k"), key="passphrase").execute(scope(two_tier), ctx)
        sealed = two_tier.read_raw("k", ctx)
        assert sealed != b"secret data"
        assert two_tier.meta("k").encrypted
        Decrypt(NamedObjects("k"), key="passphrase").execute(scope(two_tier), ctx)
        assert two_tier.read_raw("k", ctx) == b"secret data"
        assert not two_tier.meta("k").encrypted

    def test_wrong_key_does_not_restore(self, two_tier, ctx):
        put_into(two_tier, "k", b"secret data", "tier1", ctx)
        Encrypt(NamedObjects("k"), key="right").execute(scope(two_tier), ctx)
        Decrypt(NamedObjects("k"), key="wrong").execute(scope(two_tier), ctx)
        assert two_tier.read_raw("k", ctx) != b"secret data"

    def test_double_encrypt_is_idempotent(self, two_tier, ctx):
        put_into(two_tier, "k", b"data", "tier1", ctx)
        Encrypt(NamedObjects("k"), key="x").execute(scope(two_tier), ctx)
        once = two_tier.read_raw("k", ctx)
        Encrypt(NamedObjects("k"), key="x").execute(scope(two_tier), ctx)
        assert two_tier.read_raw("k", ctx) == once


class TestCompressUncompress:
    def test_roundtrip_and_space_savings(self, two_tier, ctx):
        data = b"compressible " * 200
        put_into(two_tier, "k", data, "tier2", ctx)
        before = two_tier.tiers.get("tier2").used
        Compress(NamedObjects("k")).execute(scope(two_tier), ctx)
        assert two_tier.tiers.get("tier2").used < before
        assert zlib.decompress(two_tier.read_raw("k", ctx)) == data
        Uncompress(NamedObjects("k")).execute(scope(two_tier), ctx)
        assert two_tier.read_raw("k", ctx) == data

    def test_compress_idempotent(self, two_tier, ctx):
        put_into(two_tier, "k", b"abc" * 100, "tier1", ctx)
        Compress(NamedObjects("k")).execute(scope(two_tier), ctx)
        once = two_tier.read_raw("k", ctx)
        Compress(NamedObjects("k")).execute(scope(two_tier), ctx)
        assert two_tier.read_raw("k", ctx) == once


class TestGrowShrink:
    def test_grow_immediate_for_block_tier(self, two_tier, ctx):
        Grow("tier2", 50.0).execute(scope(two_tier), ctx)
        assert two_tier.tiers.get("tier2").capacity == int(10 ** 7 * 1.5)

    def test_grow_memcached_waits_for_provisioning(self, two_tier, ctx):
        Grow("tier1", 100.0).execute(scope(two_tier), ctx)
        tier = two_tier.tiers.get("tier1")
        assert tier.capacity == 64 * 1024  # not yet
        assert tier.growing
        two_tier.clock.advance(61)
        assert tier.capacity == 128 * 1024
        assert not tier.growing

    def test_shrink(self, two_tier, ctx):
        Shrink("tier2", 50.0).execute(scope(two_tier), ctx)
        assert two_tier.tiers.get("tier2").capacity == 5 * 10 ** 6

    def test_unknown_tier(self, two_tier, ctx):
        with pytest.raises(UnknownTierError):
            Grow("tier9", 10.0).execute(scope(two_tier), ctx)


class TestSetAttrAndConditional:
    def test_assignment_sets_dirty(self, two_tier, ctx):
        s = insert_scope(two_tier, "k", b"v")
        SetAttr(("insert", "object", "dirty"), True).execute(s, ctx)
        assert s.action.meta.dirty is True

    def test_assignment_adds_tag(self, two_tier, ctx):
        s = insert_scope(two_tier, "k", b"v")
        SetAttr(("insert", "object", "tags"), "tmp").execute(s, ctx)
        assert "tmp" in s.action.meta.tags

    def test_conditional_then_branch(self, two_tier, ctx):
        # Figure 5's LRU: if full, move oldest out, then store.
        for i in range(4):
            put_into(two_tier, f"old{i}", b"x" * 16384, "tier1", ctx)
        s = insert_scope(two_tier, "new", b"y" * 16384)
        lru = Conditional(
            TierFull("tier1"),
            then=[Move(TierOldest("tier1"), "tier2")],
        )
        lru.execute(s, ctx)
        Store(InsertObject(), "tier1").execute(s, ctx)
        assert two_tier.meta("old0").locations == {"tier2"}
        assert two_tier.meta("new").locations == {"tier1"}

    def test_conditional_else_branch(self, two_tier, ctx):
        put_into(two_tier, "k", b"v", "tier1", ctx)
        cond = Conditional(
            Literal(False),
            then=[Delete(NamedObjects("k"))],
            otherwise=[Copy(NamedObjects("k"), "tier2")],
        )
        cond.execute(scope(two_tier), ctx)
        assert two_tier.meta("k").locations == {"tier1", "tier2"}


class TestSnapshot:
    def test_snapshot_creates_labelled_copy(self, two_tier, ctx):
        put_into(two_tier, "k", b"v1", "tier1", ctx)
        Snapshot(NamedObjects("k"), to="tier2", label="backup1").execute(
            scope(two_tier), ctx
        )
        assert two_tier.has_object("k@backup1")
        assert two_tier.read_raw("k@backup1", ctx) == b"v1"
        assert "snapshot" in two_tier.meta("k@backup1").tags
        # Overwrite the original: the snapshot keeps the old bytes.
        two_tier.write_to_tier("k", b"v2", "tier1", ctx)
        assert two_tier.read_raw("k@backup1", ctx) == b"v1"
