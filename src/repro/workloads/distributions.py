"""Key-popularity distributions.

* :class:`UniformKeys` — every key equally likely (YCSB "uniform").
* :class:`ZipfianKeys` — YCSB's zipfian generator (default θ=0.99; the
  Figure 12 experiment uses θ=1.2), implemented with the standard
  Gray et al. rejection-free formula YCSB uses, plus optional FNV
  scrambling so popular keys scatter across the keyspace.
* :class:`SpecialDistribution` — sysbench's "special" distribution: a
  configurable percentage of the rows receives 80 % of the accesses
  (the x-axis of Figures 7 and 8).
"""

from __future__ import annotations

import random


class UniformKeys:
    """Uniform over ``[0, item_count)``."""

    def __init__(self, item_count: int, seed: int = 0):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self.rng = random.Random(seed)

    def next(self) -> int:
        return self.rng.randrange(self.item_count)


def _fnv1a_64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value``."""
    data = value.to_bytes(8, "little", signed=False)
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class ZipfianKeys:
    """YCSB-style zipfian generator.

    Rank 0 is the most popular item.  With ``scramble=True`` (YCSB's
    ``ScrambledZipfianGenerator``) popularity is spread over the
    keyspace by hashing the rank.
    """

    def __init__(
        self,
        item_count: int,
        theta: float = 0.99,
        seed: int = 0,
        scramble: bool = False,
    ):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        if not 0 < theta:
            raise ValueError("theta must be positive")
        if theta == 1.0:
            theta = 0.9999999  # the formula divides by (1 - theta)
        self.item_count = item_count
        self.theta = theta
        self.scramble = scramble
        self.rng = random.Random(seed)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        if item_count <= 2:
            # The Gray et al. approximation divides by (1 - ζ(2)/ζ(n)),
            # which is zero at n=2: sample the exact distribution instead.
            total = self._zetan
            self._cdf = []
            acc = 0.0
            for i in range(1, item_count + 1):
                acc += (1.0 / i ** theta) / total
                self._cdf.append(acc)
            self._eta = None
        else:
            self._cdf = None
            self._eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
                1 - self._zeta2 / self._zetan
            )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_rank(self) -> int:
        """A popularity rank in [0, item_count), 0 the hottest."""
        u = self.rng.random()
        if self._cdf is not None:  # exact sampling for n <= 2
            for rank, threshold in enumerate(self._cdf):
                if u <= threshold:
                    return rank
            return self.item_count - 1
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.item_count * (self._eta * u - self._eta + 1) ** self._alpha
        )

    def next(self) -> int:
        rank = min(self.next_rank(), self.item_count - 1)
        if self.scramble:
            return _fnv1a_64(rank) % self.item_count
        return rank


class SpecialDistribution:
    """sysbench ``--oltp-dist-type=special``.

    ``hot_fraction`` of the rows (a contiguous prefix) receives
    ``hot_probability`` (80 %) of the accesses; the rest are uniform
    over the remaining rows.  The paper sweeps ``hot_fraction`` from
    1 % to 30 %.
    """

    def __init__(
        self,
        item_count: int,
        hot_fraction: float,
        hot_probability: float = 0.80,
        seed: int = 0,
    ):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        if not 0 < hot_fraction <= 1:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0 <= hot_probability <= 1:
            raise ValueError("hot_probability must be in [0, 1]")
        self.item_count = item_count
        self.hot_count = max(1, int(round(item_count * hot_fraction)))
        self.hot_probability = hot_probability
        self.rng = random.Random(seed)

    def next(self) -> int:
        if self.rng.random() < self.hot_probability or self.hot_count >= self.item_count:
            return self.rng.randrange(self.hot_count)
        return self.rng.randrange(self.hot_count, self.item_count)
