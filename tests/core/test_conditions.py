"""Condition AST: attribute resolution, comparisons, boolean logic."""

import pytest

from repro.core.actions import Action
from repro.core.conditions import (
    And,
    AttrRef,
    Comparison,
    EvalScope,
    Literal,
    Not,
    Or,
    TierDirtyBytes,
    TierFull,
)
from repro.core.errors import PolicyError
from repro.core.objects import ObjectMeta
from tests.core.conftest import build_instance


@pytest.fixture
def instance(two_tier):
    return two_tier


def scope_for(instance, action=None, obj=None):
    return EvalScope(instance=instance, action=action, obj=obj)


class TestAttrRef:
    def test_tier_filled(self, instance, ctx):
        instance.create_object("a", 32 * 1024)
        instance.write_to_tier("a", b"x" * (32 * 1024), "tier1", ctx)
        ref = AttrRef(("tier1", "filled"))
        assert ref.evaluate(scope_for(instance)) == pytest.approx(0.5)

    def test_tier_used_and_capacity(self, instance, ctx):
        instance.create_object("a", 100)
        instance.write_to_tier("a", b"x" * 100, "tier1", ctx)
        assert AttrRef(("tier1", "used")).evaluate(scope_for(instance)) == 100
        assert AttrRef(("tier1", "capacity")).evaluate(scope_for(instance)) == 64 * 1024

    def test_object_attributes(self, instance):
        meta = ObjectMeta(key="k", size=9, dirty=True, locations={"tier1"})
        scope = scope_for(instance, obj=meta)
        assert AttrRef(("object", "dirty")).evaluate(scope) is True
        assert AttrRef(("object", "size")).evaluate(scope) == 9
        assert AttrRef(("object", "location")).evaluate(scope) == {"tier1"}

    def test_insert_object_path(self, instance):
        meta = ObjectMeta(key="k", dirty=True)
        action = Action(kind="insert", key="k", meta=meta, tier="tier1")
        scope = scope_for(instance, action=action)
        assert AttrRef(("insert", "object", "dirty")).evaluate(scope) is True
        assert AttrRef(("insert", "into")).evaluate(scope) == "tier1"

    def test_time_resolves_to_clock(self, instance):
        instance.clock.advance(12)
        assert AttrRef(("time",)).evaluate(scope_for(instance)) == 12

    def test_unknown_path_raises(self, instance):
        with pytest.raises(PolicyError):
            AttrRef(("nonsense", "attr")).evaluate(scope_for(instance))

    def test_unknown_object_attr_raises(self, instance):
        scope = scope_for(instance, obj=ObjectMeta(key="k"))
        with pytest.raises(PolicyError):
            AttrRef(("object", "wat")).evaluate(scope)

    def test_object_path_without_object_raises(self, instance):
        with pytest.raises(PolicyError):
            AttrRef(("object", "dirty")).evaluate(scope_for(instance))

    def test_access_frequency(self, instance):
        meta = ObjectMeta(key="k", created_at=0.0)
        meta.touch(1.0)
        instance.clock.advance(10)
        scope = scope_for(instance, obj=meta)
        assert AttrRef(("object", "access_frequency")).evaluate(scope) == pytest.approx(0.1)


class TestComparison:
    def test_location_membership(self, instance):
        meta = ObjectMeta(key="k", locations={"tier1", "tier2"})
        scope = scope_for(instance, obj=meta)
        cmp1 = Comparison("==", AttrRef(("object", "location")), Literal("tier1"))
        cmp3 = Comparison("==", AttrRef(("object", "location")), Literal("tier3"))
        assert cmp1.evaluate(scope) is True
        assert cmp3.evaluate(scope) is False

    def test_tag_membership(self, instance):
        meta = ObjectMeta(key="k", tags={"tmp"})
        scope = scope_for(instance, obj=meta)
        assert Comparison("==", AttrRef(("object", "tags")), Literal("tmp")).evaluate(scope)

    def test_numeric_operators(self, instance):
        scope = scope_for(instance)
        assert Comparison("<", Literal(1), Literal(2)).evaluate(scope)
        assert Comparison(">=", Literal(2), Literal(2)).evaluate(scope)
        assert Comparison("!=", Literal(1), Literal(2)).evaluate(scope)
        assert not Comparison(">", Literal(1), Literal(2)).evaluate(scope)

    def test_tier_compares_by_name(self, instance):
        # `insert.into == tier1` where lhs resolves to a tier name and
        # rhs to a Tier object.
        action = Action(kind="insert", key="k", meta=ObjectMeta(key="k"), tier="tier1")
        scope = scope_for(instance, action=action)
        cmp = Comparison("==", AttrRef(("insert", "into")), AttrRef(("tier1",)))
        assert cmp.evaluate(scope) is True

    def test_unknown_operator_rejected(self):
        with pytest.raises(PolicyError):
            Comparison("~=", Literal(1), Literal(1))


class TestBooleanLogic:
    def test_and_or_not(self, instance):
        scope = scope_for(instance)
        t, f = Literal(True), Literal(False)
        assert And(t, t).evaluate(scope)
        assert not And(t, f).evaluate(scope)
        assert Or(f, t).evaluate(scope)
        assert not Or(f, f).evaluate(scope)
        assert Not(f).evaluate(scope)

    def test_figure3_writeback_predicate(self, instance):
        """object.location == tier1 && object.dirty == true"""
        predicate = And(
            Comparison("==", AttrRef(("object", "location")), Literal("tier1")),
            Comparison("==", AttrRef(("object", "dirty")), Literal(True)),
        )
        dirty_in_t1 = ObjectMeta(key="a", locations={"tier1"}, dirty=True)
        clean_in_t1 = ObjectMeta(key="b", locations={"tier1"}, dirty=False)
        dirty_in_t2 = ObjectMeta(key="c", locations={"tier2"}, dirty=True)
        assert predicate.evaluate(scope_for(instance, obj=dirty_in_t1))
        assert not predicate.evaluate(scope_for(instance, obj=clean_in_t1))
        assert not predicate.evaluate(scope_for(instance, obj=dirty_in_t2))


class TestTierFull:
    def test_full_without_pending_insert(self, instance, ctx):
        cond = TierFull("tier1")
        assert not cond.evaluate(scope_for(instance))
        instance.create_object("a", 64 * 1024)
        instance.write_to_tier("a", b"x" * (64 * 1024), "tier1", ctx)
        assert cond.evaluate(scope_for(instance))

    def test_pending_insert_that_does_not_fit(self, instance, ctx):
        instance.create_object("a", 60 * 1024)
        instance.write_to_tier("a", b"x" * (60 * 1024), "tier1", ctx)
        meta = instance.create_object("b", 8 * 1024)
        action = Action(kind="insert", key="b", meta=meta, data=b"y" * (8 * 1024))
        assert TierFull("tier1").evaluate(scope_for(instance, action=action))

    def test_pending_insert_that_fits(self, instance):
        meta = instance.create_object("b", 1024)
        action = Action(kind="insert", key="b", meta=meta, data=b"y" * 1024)
        assert not TierFull("tier1").evaluate(scope_for(instance, action=action))

    def test_unknown_tier(self, instance):
        from repro.core.errors import UnknownTierError

        with pytest.raises(UnknownTierError):
            TierFull("tier9").evaluate(scope_for(instance))


class TestTierDirtyBytes:
    def test_sums_only_dirty_in_tier(self, instance, ctx):
        a = instance.create_object("a", 10)
        instance.write_to_tier("a", b"x" * 10, "tier1", ctx)
        a.dirty = True
        b = instance.create_object("b", 20)
        instance.write_to_tier("b", b"y" * 20, "tier1", ctx)
        b.dirty = False
        c = instance.create_object("c", 40)
        instance.write_to_tier("c", b"z" * 40, "tier2", ctx)
        c.dirty = True
        cond = TierDirtyBytes("tier1")
        assert cond.evaluate(scope_for(instance)) == 10
