"""Storage interface layer: uniform ``Tier`` wrappers over cloud services.

A Tiera instance is configured with named tiers ("Memcached, size 5G").
Each :class:`~repro.tiers.base.Tier` adapts one simulated service to the
uniform interface the control layer speaks — put/get/delete plus
capacity, fill fraction, recency queries, and grow/shrink — and charges
any cross-availability-zone network penalty between the Tiera server's
node and the service's node.
"""

from repro.tiers.base import Tier
from repro.tiers.registry import TierFactory, TierRegistry, default_registry

__all__ = ["Tier", "TierFactory", "TierRegistry", "default_registry"]
