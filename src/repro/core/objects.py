"""Tiera's object model and per-object metadata.

"Tiera tracks the common attributes or metadata for each object: size,
access frequency, dirty flag, location (i.e. which tiers), and time of
last access.  In addition, each Tiera object may also be assigned a set
of tags." (§2.1)

Objects are uninterpreted byte sequences addressed by a globally unique
key; they cannot be edited in place but may be overwritten (which bumps
``version``).  ``checksum`` supports the ``storeOnce`` de-duplicating
response; ``compressed``/``encrypted`` record transformations applied by
the corresponding responses so GET can reverse them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Set


def content_checksum(data: bytes) -> str:
    """Stable content fingerprint used by ``storeOnce`` de-duplication."""
    return hashlib.sha256(data).hexdigest()


@dataclass
class ObjectMeta:
    """Everything the control layer knows about one stored object."""

    key: str
    size: int = 0
    locations: Set[str] = field(default_factory=set)
    dirty: bool = False
    tags: Set[str] = field(default_factory=set)
    created_at: float = 0.0
    last_access: float = 0.0
    last_modified: float = 0.0
    access_count: int = 0
    version: int = 0
    checksum: str = ""
    compressed: bool = False
    encrypted: bool = False
    #: set by storeOnce when this key's content is held by another key
    alias_of: Optional[str] = None
    #: number of alias keys pointing at this key's content
    refcount: int = 0

    def touch(self, now: float) -> None:
        """Record an access (GET) for recency/frequency attributes."""
        self.last_access = now
        self.access_count += 1

    def modified(self, now: float) -> None:
        """Record an overwrite (PUT over an existing key)."""
        self.last_modified = now
        self.version += 1

    def access_frequency(self, now: float) -> float:
        """Accesses per second over the object's lifetime so far."""
        age = max(now - self.created_at, 1e-9)
        return self.access_count / age

    def in_tier(self, tier_name: str) -> bool:
        return tier_name in self.locations

    # -- persistence (metadata survives server restart via the kvstore) --

    def to_json(self) -> bytes:
        doc = {
            "key": self.key,
            "size": self.size,
            "locations": sorted(self.locations),
            "dirty": self.dirty,
            "tags": sorted(self.tags),
            "created_at": self.created_at,
            "last_access": self.last_access,
            "last_modified": self.last_modified,
            "access_count": self.access_count,
            "version": self.version,
            "checksum": self.checksum,
            "compressed": self.compressed,
            "encrypted": self.encrypted,
            "alias_of": self.alias_of,
            "refcount": self.refcount,
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    @classmethod
    def from_json(cls, blob: bytes) -> "ObjectMeta":
        doc: Dict = json.loads(blob.decode("utf-8"))
        return cls(
            key=doc["key"],
            size=doc["size"],
            locations=set(doc["locations"]),
            dirty=doc["dirty"],
            tags=set(doc["tags"]),
            created_at=doc["created_at"],
            last_access=doc["last_access"],
            last_modified=doc["last_modified"],
            access_count=doc["access_count"],
            version=doc["version"],
            checksum=doc["checksum"],
            compressed=doc["compressed"],
            encrypted=doc["encrypted"],
            alias_of=doc.get("alias_of"),
            refcount=doc.get("refcount", 0),
        )
