"""LogStore / MemoryStore: roundtrips, recovery, compaction, torn tails."""

import os
import shutil

import pytest
from hypothesis import given, settings, strategies as st

from repro.kvstore import CorruptRecordError, LogStore, MemoryStore
from repro.kvstore.record import decode_at, encode


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "meta.db")


class TestRecordFormat:
    def test_roundtrip_put(self):
        blob = encode(b"key", b"value")
        key, value, nxt = decode_at(blob, 0)
        assert (key, value, nxt) == (b"key", b"value", len(blob))

    def test_roundtrip_tombstone(self):
        blob = encode(b"key", None)
        key, value, _ = decode_at(blob, 0)
        assert key == b"key"
        assert value is None

    def test_empty_key_and_value(self):
        blob = encode(b"", b"")
        key, value, _ = decode_at(blob, 0)
        assert (key, value) == (b"", b"")

    def test_checksum_detects_corruption(self):
        blob = bytearray(encode(b"key", b"value"))
        blob[-1] ^= 0xFF
        with pytest.raises(CorruptRecordError):
            decode_at(bytes(blob), 0)

    def test_truncation_detected(self):
        blob = encode(b"key", b"value")
        with pytest.raises(CorruptRecordError):
            decode_at(blob[:-2], 0)

    @given(st.binary(max_size=200), st.one_of(st.none(), st.binary(max_size=500)))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, key, value):
        decoded_key, decoded_value, _ = decode_at(encode(key, value), 0)
        assert decoded_key == key
        assert decoded_value == value


class TestMemoryStore:
    def test_put_get(self):
        with MemoryStore() as store:
            store.put(b"a", b"1")
            assert store.get(b"a") == b"1"

    def test_get_missing_is_none(self):
        assert MemoryStore().get(b"missing") is None

    def test_delete(self):
        store = MemoryStore()
        store.put(b"a", b"1")
        assert store.delete(b"a") is True
        assert store.delete(b"a") is False
        assert store.get(b"a") is None

    def test_contains_and_len(self):
        store = MemoryStore()
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        assert b"a" in store
        assert len(store) == 2


class TestLogStore:
    def test_put_get_roundtrip(self, store_path):
        with LogStore(store_path) as store:
            store.put(b"a", b"1")
            store.put(b"b", b"22")
            assert store.get(b"a") == b"1"
            assert store.get(b"b") == b"22"

    def test_overwrite_returns_latest(self, store_path):
        with LogStore(store_path) as store:
            store.put(b"a", b"old")
            store.put(b"a", b"new")
            assert store.get(b"a") == b"new"

    def test_persistence_across_reopen(self, store_path):
        with LogStore(store_path) as store:
            store.put(b"a", b"1")
            store.delete(b"a")
            store.put(b"b", b"2")
        with LogStore(store_path) as store:
            assert store.get(b"a") is None
            assert store.get(b"b") == b"2"

    def test_torn_tail_recovery(self, store_path):
        with LogStore(store_path) as store:
            store.put(b"good", b"data")
        # Simulate a crash mid-append: garbage at the end of the log.
        with open(store_path, "ab") as raw:
            raw.write(b"\x13\x37torn-record-without-valid-header")
        with LogStore(store_path) as store:
            assert store.get(b"good") == b"data"
            store.put(b"after", b"recovery")  # log still usable
        with LogStore(store_path) as store:
            assert store.get(b"after") == b"recovery"

    def test_torn_tail_mid_record_truncation(self, store_path):
        # Crash mid-append: the last record is cut short, not garbage.
        with LogStore(store_path) as store:
            store.put(b"first", b"one")
            store.put(b"second", b"two")
        size = os.path.getsize(store_path)
        with open(store_path, "r+b") as raw:
            raw.truncate(size - 3)
        with LogStore(store_path) as store:
            assert store.get(b"first") == b"one"
            assert store.get(b"second") is None  # never fully written
            store.put(b"second", b"again")       # log still appendable
        with LogStore(store_path) as store:
            assert store.get(b"second") == b"again"

    def test_stale_compact_file_cleaned_on_open(self, store_path):
        # Crash between writing the compaction temp file and the
        # os.replace: the stale .compact was never the live store and
        # must not shadow (or block) a later compaction.
        with LogStore(store_path) as store:
            store.put(b"a", b"live")
        with open(store_path + ".compact", "wb") as raw:
            raw.write(b"half-written compaction output")
        with LogStore(store_path) as store:
            assert store.get(b"a") == b"live"
            store.put(b"a", b"newer")
            store.compact()
            assert store.get(b"a") == b"newer"
        assert not os.path.exists(store_path + ".compact")

    def test_compact_swap_survives_immediate_crash(self, store_path, tmp_path):
        # Crash right after compact()'s os.replace, before any further
        # writes or a clean close: the swapped-in file alone must be a
        # complete, reopenable log (compact fsyncs before the swap).
        snapshot = str(tmp_path / "crashed.db")
        with LogStore(store_path) as store:
            for i in range(9):
                store.put(b"k%d" % (i % 3), b"v%d" % i)
            store.delete(b"k0")
            store.compact()
            shutil.copyfile(store_path, snapshot)
        with LogStore(snapshot) as store:
            assert store.get(b"k0") is None
            assert store.get(b"k1") == b"v7"
            assert store.get(b"k2") == b"v8"
            assert store.dead_bytes == 0

    def test_dead_bytes_tracking(self, store_path):
        with LogStore(store_path) as store:
            assert store.dead_bytes == 0
            store.put(b"a", b"1")
            store.put(b"a", b"2")
            assert store.dead_bytes > 0

    def test_compaction_reclaims_and_preserves(self, store_path):
        with LogStore(store_path) as store:
            for i in range(50):
                store.put(b"key%d" % (i % 5), b"v%d" % i)
            store.delete(b"key0")
            store.sync()
            size_before = os.path.getsize(store_path)
            store.compact()
            assert store.dead_bytes == 0
            assert os.path.getsize(store_path) < size_before
            assert store.get(b"key0") is None
            assert store.get(b"key4") == b"v49"
        with LogStore(store_path) as store:  # survives reopen
            assert store.get(b"key4") == b"v49"

    def test_keys_iteration(self, store_path):
        with LogStore(store_path) as store:
            store.put(b"a", b"1")
            store.put(b"b", b"2")
            store.delete(b"a")
            assert sorted(store.keys()) == [b"b"]

    def test_items(self, store_path):
        with LogStore(store_path) as store:
            store.put(b"a", b"1")
            assert list(store.items()) == [(b"a", b"1")]

    def test_sync_writes_mode(self, store_path):
        with LogStore(store_path, sync_writes=True) as store:
            store.put(b"a", b"1")
            assert store.get(b"a") == b"1"

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.one_of(st.none(), st.binary(max_size=40)),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, tmp_path_factory, ops):
        """Property: LogStore behaves exactly like a dict, including
        after close/reopen."""
        path = str(tmp_path_factory.mktemp("kv") / "model.db")
        model = {}
        with LogStore(path) as store:
            for key_id, value in ops:
                key = b"k%d" % key_id
                if value is None:
                    assert store.delete(key) == (key in model)
                    model.pop(key, None)
                else:
                    store.put(key, value)
                    model[key] = value
        with LogStore(path) as store:
            assert {k: store.get(k) for k in store.keys()} == model
