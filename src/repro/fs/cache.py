"""Node page cache: the EC2 instance's OS buffer cache, modelled.

The paper's baselines lean on this — "requests can be served from the
local instance's buffer cache" explains why MySQL-on-EBS holds up on
read-only workloads (Figure 7) — and its TPC-W experiment explicitly
shrinks instance memory to 1 GB to limit it.  A :class:`PageCache` is a
byte-budgeted LRU over (path, block) pairs; hits cost only a small CPU
charge instead of a storage round trip.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

# Reading a cached page costs a memcpy + syscall, not a device trip.
CACHE_HIT_COST = 3e-6


class PageCache:
    """Byte-budgeted LRU cache of file blocks."""

    def __init__(self, capacity_bytes: int, obs=None, name: str = "page-cache"):
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity_bytes
        self.name = name
        self._pages: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        # Optional repro.obs hub: hit/miss tallies also land in the
        # metrics registry so benchmark reports can read them uniformly.
        self._hit_counter = self._miss_counter = None
        if obs is not None:
            self._hit_counter = obs.metrics.counter(
                "tiera_page_cache_hits_total", "Page-cache block hits."
            )
            self._miss_counter = obs.metrics.counter(
                "tiera_page_cache_misses_total", "Page-cache block misses."
            )

    @property
    def used(self) -> int:
        return self._used

    def get(self, path: str, block: int) -> Optional[bytes]:
        page = self._pages.get((path, block))
        if page is None:
            self.misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc(cache=self.name)
            return None
        self._pages.move_to_end((path, block))
        self.hits += 1
        if self._hit_counter is not None:
            self._hit_counter.inc(cache=self.name)
        return page

    def put(self, path: str, block: int, data: bytes) -> None:
        key = (path, block)
        old = self._pages.pop(key, None)
        if old is not None:
            self._used -= len(old)
        self._pages[key] = data
        self._used += len(data)
        while self._used > self.capacity and self._pages:
            _, evicted = self._pages.popitem(last=False)
            self._used -= len(evicted)

    def invalidate(self, path: str, block: Optional[int] = None) -> None:
        if block is not None:
            old = self._pages.pop((path, block), None)
            if old is not None:
                self._used -= len(old)
            return
        for key in [k for k in self._pages if k[0] == path]:
            self._used -= len(self._pages.pop(key))

    def clear(self) -> None:
        self._pages.clear()
        self._used = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
