"""Blocking RPC client for a remote Tiera instance.

Implements the same :class:`~repro.core.api.StorageAPI` surface as the
in-process façades: envelope verbs (``put_object``/``get_object``/
``delete_object``), batch verbs riding the ``batch`` wire method, and
the legacy positional verbs as deprecation shims.  Captured failures
carry an :class:`~repro.rpc.protocol.RpcError` (with the server's
stable ``code``) as their exception, so ``raise_for_error`` behaves
like the old raising client.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import api
from repro.core.api import BatchOp, BatchResult, OpResult
from repro.rpc.protocol import (
    RpcError,
    decode_bytes,
    encode_bytes,
    read_frame,
    write_frame,
)


class TieraClient:
    """Connects to a :class:`~repro.rpc.server.TieraRpcServer`.

    Thread-safe: concurrent calls serialize on the connection, matching
    how a single benchmark client thread uses the real Thrift client.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TieraClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, method: str, **params) -> Any:
        request_id = next(self._ids)
        with self._lock:
            write_frame(
                self._sock, {"id": request_id, "method": method, "params": params}
            )
            response = read_frame(self._sock)
        if response is None:
            raise ConnectionError("server closed the connection")
        if response.get("id") != request_id:
            raise RpcError("ProtocolError", "response id mismatch")
        if "error" in response:
            err = response["error"]
            raise RpcError(
                err.get("type", "Error"),
                err.get("message", ""),
                code=err.get("code", "INTERNAL"),
            )
        return response.get("result")

    @staticmethod
    def _from_wire(wire: Dict[str, Any]) -> OpResult:
        """Decode an envelope, rehydrating failures as RpcErrors so
        ``raise_for_error`` raises the same exception type the old
        raising client did (with the stable ``code`` attached)."""
        result = OpResult.from_wire(wire, decode_bytes)
        if not result.ok:
            result.exception = RpcError(
                result.error_type or "Error",
                result.error_message,
                code=result.error or "INTERNAL",
            )
        return result

    # -- the StorageAPI surface -------------------------------------------

    def put_object(
        self, key: str, data: bytes, *, tags: Optional[List[str]] = None
    ) -> OpResult:
        return self._from_wire(self._call(
            "put_object",
            key=key,
            data=encode_bytes(data),
            tags=list(tags) if tags else None,
        ))

    def get_object(
        self, key: str, *, prefer: Optional[str] = None
    ) -> OpResult:
        return self._from_wire(
            self._call("get_object", key=key, prefer=prefer)
        )

    def delete_object(self, key: str) -> OpResult:
        return self._from_wire(self._call("delete_object", key=key))

    def execute_batch(
        self,
        ops: Sequence[BatchOp],
        *,
        parallelism: int = api.DEFAULT_PARALLELISM,
    ) -> BatchResult:
        """One round trip for the whole batch; the server overlaps the
        items in virtual time.  Raises :class:`RpcError` with code
        ``BACKPRESSURE`` when the server's admission control refuses."""
        wire = self._call(
            "batch",
            ops=[op.to_wire(encode_bytes) for op in ops],
            parallelism=parallelism,
        )
        return BatchResult(
            results=[self._from_wire(w) for w in wire["results"]],
            latency=wire["latency"],
            parallelism=wire["parallelism"],
        )

    def put_many(
        self,
        items: Iterable[Tuple[str, bytes]],
        *,
        tags: Optional[List[str]] = None,
        parallelism: int = api.DEFAULT_PARALLELISM,
    ) -> BatchResult:
        return self.execute_batch(
            api.batch_from_verbs(api.PUT, items, tags=tags),
            parallelism=parallelism,
        )

    def get_many(
        self, keys: Iterable[str], *, parallelism: int = api.DEFAULT_PARALLELISM
    ) -> BatchResult:
        return self.execute_batch(
            api.batch_from_verbs(api.GET, keys), parallelism=parallelism
        )

    def delete_many(
        self, keys: Iterable[str], *, parallelism: int = api.DEFAULT_PARALLELISM
    ) -> BatchResult:
        return self.execute_batch(
            api.batch_from_verbs(api.DELETE, keys), parallelism=parallelism
        )

    # -- legacy verbs (deprecated shims over the envelope API) ------------

    def put(self, key: str, data: bytes, tags: Optional[List[str]] = None) -> float:
        """Deprecated: use :meth:`put_object`.  Returns the server-side
        latency in seconds, raising :class:`RpcError` on failure."""
        return self.put_object(key, data, tags=tags).raise_for_error().latency

    def get(self, key: str) -> bytes:
        """Deprecated: use :meth:`get_object`."""
        return self.get_object(key).raise_for_error().value

    def delete(self, key: str) -> float:
        """Deprecated: use :meth:`delete_object`."""
        return self.delete_object(key).raise_for_error().latency

    def contains(self, key: str) -> bool:
        return self._call("contains", key=key)

    def stat(self, key: str) -> Dict[str, Any]:
        return self._call("stat", key=key)

    def add_tag(self, key: str, tag: str) -> None:
        self._call("add_tag", key=key, tag=tag)

    def keys(self, tag: Optional[str] = None) -> List[str]:
        if tag is None:
            return self._call("keys")
        return self._call("keys", tag=tag)

    def ping(self) -> bool:
        return self._call("ping") == "pong"

    def tiers(self) -> List[Dict[str, Any]]:
        return self._call("tiers")

    # -- introspection ----------------------------------------------------

    def stats(self, format: str = "json", audit_limit: int = 50) -> Any:
        """The server's observability snapshot.

        ``format="json"`` returns the snapshot dict; ``"prometheus"``
        returns the text exposition as a string.
        """
        result = self._call("stats", format=format, audit_limit=audit_limit)
        if format == "prometheus":
            return result["text"]
        return result

    def trace(
        self, limit: int = 10, enable: Optional[bool] = None
    ) -> Dict[str, Any]:
        """Recent request traces; ``enable`` toggles tracing first."""
        params: Dict[str, Any] = {"limit": limit}
        if enable is not None:
            params["enable"] = enable
        return self._call("trace", **params)

    def health(self) -> Dict[str, Any]:
        return self._call("health")

    def profile(self, reset: bool = False) -> Dict[str, Any]:
        """The server's accumulated wall/virtual profile report.

        ``reset=True`` clears the server's wall-section tree after the
        report, starting a fresh profiling window."""
        return self._call("profile", reset=reset)

    def slo(
        self,
        install_defaults: bool = False,
        objectives: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """The SLO engine's summary; optionally install objectives first."""
        params: Dict[str, Any] = {}
        if install_defaults:
            params["install_defaults"] = True
        if objectives:
            params["objectives"] = objectives
        return self._call("slo", **params)

    def heat(self, enable: bool = False, limit: Optional[int] = None,
             **config) -> Dict[str, Any]:
        """The heat tracker's snapshot; optionally enable it first.

        ``enable=True`` turns the tracker on (configuration keywords —
        ``windows=``, ``top_k=``, ``max_objects=``, ``sample_interval=``,
        ``hot_min=`` — pass through); ``limit`` caps the hot list.
        Returns ``{"enabled": False}`` until enabled."""
        params: Dict[str, Any] = {}
        if enable:
            params["enable"] = True
            params.update(config)
        if limit is not None:
            params["limit"] = limit
        return self._call("heat", **params)

    # -- unified management API -------------------------------------------

    def configure(self, feature: str, **options) -> "api.ManagementResult":
        """Enable or retune ``feature`` (the :class:`ManagementAPI` verb).

        The rehydrated :class:`~repro.core.api.ManagementResult`
        compares equal to the direct façade's — errors (stable codes
        ``UNKNOWN_FEATURE``, ``BAD_CONFIG``) come back captured in the
        envelope, never raised."""
        doc = self._call("configure", feature=feature, options=options)
        return api.ManagementResult.from_wire(doc)

    def feature_status(self, feature: str) -> "api.ManagementResult":
        """Inspect ``feature`` (the :class:`ManagementAPI` verb)."""
        doc = self._call("feature_status", feature=feature)
        return api.ManagementResult.from_wire(doc)

    # -- adaptive placement -------------------------------------------------

    def placement(self, action: str = "status") -> Dict[str, Any]:
        """Placement introspection: ``status`` (default), ``plan``
        (score candidates without moving data), or ``run`` (execute one
        cycle now).  Returns ``{"enabled": False}`` until the engine is
        configured on."""
        return self._call("placement", action=action)

    # -- durability -------------------------------------------------------

    def fsck(self, repair: bool = False) -> Dict[str, Any]:
        """Run the metadata/tier cross-check scrub on the server."""
        return self._call("fsck", repair=repair)

    def snapshot(self, include_volatile: bool = False) -> Dict[str, Any]:
        """Pull a full snapshot of the server's state.

        Returns ``{"archive": <tar bytes>, "manifest": <dict>}``."""
        result = self._call("snapshot", include_volatile=include_volatile)
        return {
            "archive": decode_bytes(result["archive"]),
            "manifest": result["manifest"],
        }

    def restore(self, archive: bytes) -> Dict[str, Any]:
        """Replace the server's state with a snapshot archive's."""
        return self._call("restore", archive=encode_bytes(archive))

    def backup(self, action: str = "status", **params) -> Dict[str, Any]:
        """Drive the server's backup lifecycle.

        ``action`` is ``snapshot`` / ``restore`` / ``prune`` /
        ``verify`` / ``list`` / ``mark_immutable`` / ``status``;
        remaining keyword arguments pass through (``kind=``,
        ``to_seq=``, ``keep_last=``, ``snapshot_id=``, …).  Returns
        ``{"enabled": False}`` when the instance has no backup store
        attached (pass ``enable=True, root="…"`` to attach one)."""
        return self._call("backup", action=action, **params)

    def cluster(self, action: str = "status", **params) -> Dict[str, Any]:
        """Drive the replicated shard cluster, when the server is one.

        ``action`` is ``status`` / ``fsck`` / ``replay`` /
        ``anti_entropy``; remaining keyword arguments pass through
        (``repair=``, ``target=``).  Returns ``{"enabled": False}``
        against a single instance or a replication-off router."""
        return self._call("cluster", action=action, **params)

    def resilience(
        self, enable: Optional[bool] = None, replay: bool = False
    ) -> Dict[str, Any]:
        """The resilience layer's summary (breakers, retries, repairs).

        ``enable=True`` turns the layer on first; ``replay=True`` kicks
        a repair-queue replay for reachable tiers."""
        params: Dict[str, Any] = {}
        if enable:
            params["enable"] = True
        if replay:
            params["replay"] = True
        return self._call("resilience", **params)
