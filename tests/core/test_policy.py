"""Policy container: rule bookkeeping and runtime modification."""

import pytest

from repro.core.errors import PolicyError
from repro.core.events import ActionEvent, ThresholdEvent, TimerEvent
from repro.core.conditions import Literal
from repro.core.policy import Policy, Rule
from repro.core.responses import Store
from repro.core.selectors import InsertObject


def store_rule(name="r1", event=None):
    return Rule(
        event if event is not None else ActionEvent("insert"),
        [Store(InsertObject(), "tier1")],
        name=name,
    )


class TestRule:
    def test_needs_responses(self):
        with pytest.raises(PolicyError):
            Rule(ActionEvent("insert"), [], name="empty")

    def test_auto_names_are_unique(self):
        a = Rule(ActionEvent("insert"), [Store(InsertObject(), "t")])
        b = Rule(ActionEvent("insert"), [Store(InsertObject(), "t")])
        assert a.name != b.name

    def test_background_threshold_event_forces_background(self):
        rule = Rule(
            ThresholdEvent(Literal(True), background=True),
            [Store(InsertObject(), "t")],
        )
        assert rule.background


class TestPolicy:
    def test_kind_partitions(self):
        rules = [
            store_rule("a"),
            store_rule("t", event=TimerEvent(5)),
            store_rule("th", event=ThresholdEvent(Literal(False))),
        ]
        policy = Policy(rules)
        assert [r.name for r in policy.action_rules()] == ["a"]
        assert [r.name for r in policy.timer_rules()] == ["t"]
        assert [r.name for r in policy.threshold_rules()] == ["th"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(PolicyError):
            Policy([store_rule("same"), store_rule("same")])

    def test_add_remove(self):
        policy = Policy([store_rule("a")])
        policy.add(store_rule("b"))
        assert len(policy) == 2
        removed = policy.remove("a")
        assert removed.name == "a"
        assert [r.name for r in policy] == ["b"]

    def test_add_duplicate_rejected(self):
        policy = Policy([store_rule("a")])
        with pytest.raises(PolicyError):
            policy.add(store_rule("a"))

    def test_remove_unknown_rejected(self):
        with pytest.raises(PolicyError):
            Policy([]).remove("ghost")

    def test_replace_keeps_position(self):
        policy = Policy([store_rule("a"), store_rule("b"), store_rule("c")])
        policy.replace("b", store_rule("b2"))
        assert [r.name for r in policy] == ["a", "b2", "c"]

    def test_replace_all(self):
        policy = Policy([store_rule("a")])
        policy.replace_all([store_rule("x"), store_rule("y")])
        assert [r.name for r in policy] == ["x", "y"]

    def test_listeners_notified_on_every_change(self):
        policy = Policy([store_rule("a")])
        changes = []
        policy.subscribe(lambda: changes.append(1))
        policy.add(store_rule("b"))
        policy.remove("a")
        policy.replace("b", store_rule("b2"))
        policy.replace_all([])
        assert len(changes) == 4
