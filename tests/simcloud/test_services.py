"""Simulated storage services: data paths, capacity, failure modes."""

import pytest

from repro.simcloud.cluster import Cluster
from repro.simcloud.errors import (
    CapacityExceededError,
    NoSuchKeyError,
    ServiceUnavailableError,
)
from repro.simcloud.latency import FixedLatency
from repro.simcloud.resources import RequestContext
from repro.simcloud.services import (
    SimBlockVolume,
    SimEphemeralDisk,
    SimMemcached,
    SimObjectStore,
)


@pytest.fixture
def env(cluster):
    node = cluster.add_node("svc-node")
    return cluster, node


def make(cls, env, **kwargs):
    cluster, node = env
    kwargs.setdefault("latency", FixedLatency(0.001))
    return cls(
        name="svc", node=node, clock=cluster.clock, rng=cluster.rng, **kwargs
    )


def ctx_for(env):
    return RequestContext(env[0].clock)


class TestBasicStorage:
    @pytest.mark.parametrize(
        "cls", [SimMemcached, SimBlockVolume, SimObjectStore, SimEphemeralDisk]
    )
    def test_put_get_roundtrip(self, env, cls):
        svc = make(cls, env)
        svc.put("k", b"value", ctx_for(env))
        assert svc.get("k", ctx_for(env)) == b"value"

    def test_get_missing_raises(self, env):
        svc = make(SimBlockVolume, env)
        with pytest.raises(NoSuchKeyError):
            svc.get("nope", ctx_for(env))

    def test_delete_frees_space(self, env):
        svc = make(SimBlockVolume, env, capacity=100)
        svc.put("k", b"x" * 60, ctx_for(env))
        svc.delete("k", ctx_for(env))
        assert svc.used == 0
        svc.put("k2", b"y" * 80, ctx_for(env))  # fits again

    def test_delete_missing_raises(self, env):
        svc = make(SimBlockVolume, env)
        with pytest.raises(NoSuchKeyError):
            svc.delete("nope", ctx_for(env))

    def test_overwrite_adjusts_usage(self, env):
        svc = make(SimBlockVolume, env, capacity=1000)
        svc.put("k", b"x" * 100, ctx_for(env))
        svc.put("k", b"y" * 40, ctx_for(env))
        assert svc.used == 40

    def test_capacity_enforced(self, env):
        svc = make(SimBlockVolume, env, capacity=50)
        with pytest.raises(CapacityExceededError):
            svc.put("k", b"x" * 51, ctx_for(env))

    def test_rejected_put_spends_no_time(self, env):
        svc = make(SimBlockVolume, env, capacity=50)
        ctx = ctx_for(env)
        with pytest.raises(CapacityExceededError):
            svc.put("k", b"x" * 51, ctx)
        assert ctx.elapsed == 0

    def test_resize_below_usage_refused(self, env):
        svc = make(SimBlockVolume, env, capacity=100)
        svc.put("k", b"x" * 80, ctx_for(env))
        with pytest.raises(CapacityExceededError):
            svc.resize(50)

    def test_operations_charge_time(self, env):
        svc = make(SimBlockVolume, env)
        ctx = ctx_for(env)
        svc.put("k", b"v", ctx)
        # Writes carry the EBS sync-write multiplier.
        assert ctx.elapsed == pytest.approx(0.001 * svc.write_multiplier)

    def test_op_counters(self, env):
        svc = make(SimObjectStore, env)
        svc.put("a", b"1", ctx_for(env))
        svc.get("a", ctx_for(env))
        try:
            svc.get("b", ctx_for(env))
        except NoSuchKeyError:
            pass
        assert svc.put_requests == 1
        assert svc.get_requests == 2  # hit + miss both billed

    def test_meter_records_by_kind(self, env, meter):
        cluster, node = env
        svc = SimObjectStore(
            name="s3", node=node, clock=cluster.clock, rng=cluster.rng, meter=meter
        )
        svc.put("a", b"1", ctx_for(env))
        assert meter.count("s3.put") == 1


class TestFailureInjection:
    def test_failed_service_times_out(self, env):
        svc = make(SimBlockVolume, env)
        svc.fail()
        ctx = ctx_for(env)
        with pytest.raises(ServiceUnavailableError):
            svc.put("k", b"v", ctx)
        assert ctx.elapsed == pytest.approx(svc.timeout)

    def test_recover_restores_service(self, env):
        svc = make(SimBlockVolume, env)
        svc.put("k", b"v", ctx_for(env))
        svc.fail()
        svc.recover()
        assert svc.get("k", ctx_for(env)) == b"v"  # EBS data survives

    def test_memcached_loses_data_on_failure(self, env):
        svc = make(SimMemcached, env)
        svc.put("k", b"v", ctx_for(env))
        svc.fail()
        svc.recover()
        with pytest.raises(NoSuchKeyError):
            svc.get("k", ctx_for(env))

    def test_node_failure_wipes_ephemeral_only(self, env):
        cluster, node = env
        eph = make(SimEphemeralDisk, env)
        ebs = SimBlockVolume(
            name="vol", node=node, clock=cluster.clock, rng=cluster.rng,
            latency=FixedLatency(0.001),
        )
        eph.put("k", b"v", ctx_for(env))
        ebs.put("k", b"v", ctx_for(env))
        node.fail()
        node.recover()
        with pytest.raises(NoSuchKeyError):
            eph.get("k", ctx_for(env))
        assert ebs.get("k", ctx_for(env)) == b"v"

    def test_node_failure_blocks_all_services(self, env):
        cluster, node = env
        svc = make(SimBlockVolume, env)
        node.fail()
        with pytest.raises(ServiceUnavailableError):
            svc.get("k", ctx_for(env))


class TestMemcached:
    def test_lru_eviction_when_enabled(self, env):
        svc = make(SimMemcached, env, capacity=10, evict_on_full=True)
        svc.put("a", b"12345", ctx_for(env))
        svc.put("b", b"12345", ctx_for(env))
        svc.put("c", b"12345", ctx_for(env))  # evicts a
        assert not svc.contains("a")
        assert svc.contains("c")
        assert svc.evictions == 1

    def test_get_refreshes_lru_order(self, env):
        svc = make(SimMemcached, env, capacity=10, evict_on_full=True)
        svc.put("a", b"12345", ctx_for(env))
        svc.put("b", b"12345", ctx_for(env))
        svc.get("a", ctx_for(env))
        svc.put("c", b"12345", ctx_for(env))  # b is now LRU
        assert svc.contains("a")
        assert not svc.contains("b")

    def test_reject_when_eviction_disabled(self, env):
        svc = make(SimMemcached, env, capacity=10)
        svc.put("a", b"1234567890", ctx_for(env))
        with pytest.raises(CapacityExceededError):
            svc.put("b", b"x", ctx_for(env))

    def test_flush_all(self, env):
        svc = make(SimMemcached, env)
        svc.put("a", b"1", ctx_for(env))
        svc.flush_all()
        assert svc.used == 0

    def test_lru_mru_keys(self, env):
        svc = make(SimMemcached, env)
        svc.put("a", b"1", ctx_for(env))
        svc.put("b", b"1", ctx_for(env))
        svc.get("a", ctx_for(env))
        assert svc.lru_key() == "b"
        assert svc.mru_key() == "a"


class TestBlockVolume:
    def test_snapshot_restore(self, env):
        svc = make(SimBlockVolume, env)
        svc.put("k", b"v1", ctx_for(env))
        svc.snapshot("snap1")
        svc.put("k", b"v2", ctx_for(env))
        svc.restore("snap1")
        assert svc.get("k", ctx_for(env)) == b"v1"

    def test_duplicate_snapshot_rejected(self, env):
        svc = make(SimBlockVolume, env)
        svc.snapshot("s")
        with pytest.raises(ValueError):
            svc.snapshot("s")

    def test_restore_unknown_snapshot(self, env):
        svc = make(SimBlockVolume, env)
        with pytest.raises(KeyError):
            svc.restore("nope")


class TestEphemeral:
    def test_instance_reboot_wipes(self, env):
        svc = make(SimEphemeralDisk, env)
        svc.put("k", b"v", ctx_for(env))
        svc.instance_reboot()
        assert svc.used == 0


class TestCluster:
    def test_cross_zone_latency(self):
        cluster = Cluster()
        a = cluster.add_node("a", zone="us-east-1a")
        b = cluster.add_node("b", zone="us-east-1b")
        c = cluster.add_node("c", zone="us-east-1a")
        assert cluster.cross_zone_latency(a, b) > 0
        assert cluster.cross_zone_latency(a, c) == 0

    def test_duplicate_node_rejected(self):
        cluster = Cluster()
        cluster.add_node("a")
        with pytest.raises(ValueError):
            cluster.add_node("a")

    def test_provisioning_delay(self):
        cluster = Cluster()
        ready = []
        node = cluster.provision_node(delay=60, on_ready=ready.append)
        assert node.failed  # not booted yet
        cluster.clock.advance(59)
        assert node.failed
        cluster.clock.advance(2)
        assert not node.failed
        assert ready == [node]
