"""Exports: Prometheus text format, stats snapshots, bench tier reports."""

import pytest

from repro.obs.export import (
    parse_labels,
    render_prometheus,
    stats_snapshot,
    tier_report,
)
from repro.obs.hub import Observability
from repro.obs.registry import MetricsRegistry
from repro.simcloud.clock import SimClock


class TestPrometheusRendering:
    def test_counter_exposition(self):
        registry = MetricsRegistry()
        registry.counter("tiera_x_total", "Help text.").inc(2, op="get")
        text = render_prometheus(registry)
        assert "# HELP tiera_x_total Help text." in text
        assert "# TYPE tiera_x_total counter" in text
        assert 'tiera_x_total{op="get"} 2' in text
        assert text.endswith("\n")

    def test_unlabelled_sample_has_no_braces(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.5)
        assert "\ng 1.5\n" in render_prometheus(registry)

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.05, op="get")
        hist.observe(0.5, op="get")
        text = render_prometheus(registry)
        assert 'h_bucket{op="get",le="0.1"} 1' in text
        assert 'h_bucket{op="get",le="1"} 2' in text
        assert 'h_bucket{op="get",le="+Inf"} 2' in text
        assert 'h_sum{op="get"} 0.55' in text
        assert 'h_count{op="get"} 2' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(name='we"ird\\thing')
        text = render_prometheus(registry)
        assert r'c{name="we\"ird\\thing"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestParseLabels:
    def test_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(op="get", service="mem-1")
        (key,) = registry.snapshot()["metrics"]["c"]["samples"]
        assert parse_labels(key) == {"op": "get", "service": "mem-1"}

    def test_empty_string(self):
        assert parse_labels("") == {}


class TestStatsSnapshot:
    def test_includes_audit_and_traces(self):
        obs = Observability(SimClock())
        obs.metrics.counter("c").inc()
        snap = stats_snapshot(obs, audit_limit=5)
        assert snap["metrics"]["c"]["samples"] == {"": 1.0}
        assert snap["audit"] == {
            "appended": 0, "dropped": 0, "errors": 0, "tail": []
        }
        assert snap["traces"] == {
            "enabled": False, "retained": 0, "dropped": 0
        }

    def test_snapshot_is_json_able(self):
        import json

        obs = Observability(SimClock())
        obs.metrics.histogram("h").observe(0.1, op="get")
        json.dumps(stats_snapshot(obs))  # must not raise


class TestTierReport:
    def _snapshot(self, fill):
        registry = MetricsRegistry()
        ops = registry.counter("tiera_tier_ops_total")
        seconds = registry.histogram("tiera_tier_op_seconds", buckets=(1.0,))
        served = registry.counter("tiera_gets_served_total")
        hits = registry.counter("tiera_page_cache_hits_total")
        for _ in range(fill):
            ops.inc(service="mem", op="get")
            seconds.observe(0.002, service="mem", op="get")
            served.inc(tier="tier1")
            hits.inc(cache="page-cache")
        return registry.snapshot()

    def test_deltas_between_snapshots(self):
        before = self._snapshot(2)
        after = self._snapshot(5)
        report = tier_report(before, after)
        assert report["ops"] == {"mem": {"get": 3.0}}
        assert report["seconds"]["mem"] == pytest.approx(0.006)
        assert report["gets_served"] == {"tier1": 3.0}
        assert report["cache"] == {"hits": 3.0}

    def test_none_before_means_absolute(self):
        report = tier_report(None, self._snapshot(4))
        assert report["ops"] == {"mem": {"get": 4.0}}

    def test_zero_delta_families_omitted(self):
        snap = self._snapshot(3)
        report = tier_report(snap, snap)
        assert report == {
            "ops": {}, "seconds": {}, "gets_served": {}, "cache": {}
        }
