"""The modified-S3FS client of the Figure 12 experiment.

"We modified the popular open source cloud backed file system S3FS to
use a Tiera instance as the backend … using the storeOnce response in
its policy" (§4.2.1).  :class:`DedupFileSystem` is that client: the
standard file API (inherited) over a Tiera instance whose insert policy
is ``storeOnce``, plus the de-duplication statistics the experiment
reports (unique vs. aliased blocks, bytes saved).
"""

from __future__ import annotations

from typing import Dict

from repro.core.server import TieraServer
from repro.fs.filesystem import TieraFileSystem


class DedupFileSystem(TieraFileSystem):
    """File system whose backing instance de-duplicates block content."""

    def __init__(self, server: TieraServer, block_size: int = 4096):
        super().__init__(server, block_size=block_size)

    # -- de-duplication statistics -------------------------------------------

    def dedup_stats(self) -> Dict[str, float]:
        """Counts over the instance's object table.

        ``logical_bytes`` is what applications wrote; ``physical_bytes``
        is what actually occupies storage; ``savings`` their ratio.
        """
        instance = self.server.instance
        unique = 0
        aliased = 0
        logical = 0
        physical = 0
        for meta in instance.iter_meta():
            if "fs-inode" in meta.tags:
                continue  # gateway metadata, not file content
            logical += meta.size
            if meta.alias_of is None:
                unique += 1
                physical += meta.size
            else:
                aliased += 1
        savings = 1.0 - (physical / logical) if logical else 0.0
        return {
            "unique_objects": unique,
            "aliased_objects": aliased,
            "logical_bytes": logical,
            "physical_bytes": physical,
            "savings": savings,
        }
