"""Setuptools shim.

The project is fully described by pyproject.toml; this file exists so
``pip install -e .`` works in offline environments where the PEP 660
editable path cannot fetch the ``wheel`` build dependency (pip falls
back to ``setup.py develop``).
"""

from setuptools import setup

setup()
