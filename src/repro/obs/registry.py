"""The metrics registry: labelled counters, gauges, and histograms.

This subsumes the hand-rolled tallies that grew all over the tree
(``StorageService.op_counts``, ``ControlLayer.fired``, page-cache
hit/miss attributes): components record into one
:class:`MetricsRegistry` under stable metric names, and anything —
benchmark reports, the RPC ``stats`` verb, the CLI — reads one
coherent snapshot stamped with simulated-clock time.

Design constraints, in order:

1. **Zero virtual-time cost.**  Recording never touches a
   :class:`~repro.simcloud.resources.RequestContext`, a resource, or an
   RNG, so enabling metrics cannot shift a simulated latency by even a
   nanosecond (the Figure 18 "observer effect" requirement).
2. **Cheap in real time.**  A labelled increment is two dict lookups;
   hot paths pre-resolve a label set once (:meth:`Metric.labels`) and
   then pay one dict lookup per event.
3. **Self-describing exports.**  :meth:`MetricsRegistry.snapshot`
   returns plain JSON-able data; the Prometheus text form lives in
   :mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.simcloud.clock import Clock

LabelSet = Tuple[Tuple[str, str], ...]

#: Default histogram buckets, in seconds: spans memcached hits (~100 µs)
#: through S3 round trips (tens of ms) up to the 5 s failure timeout.
DEFAULT_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 5.0
)

#: Per-cell exact-sample reservoir: the first N observations are kept
#: verbatim, so quantiles over small samples are exact instead of
#: bucket-interpolated (bucket edges are coarse below ~100 samples).
EXACT_RESERVOIR = 128


def _labelset(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base for one named metric family (all label combinations)."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", clock: Optional[Clock] = None):
        self.name = name
        self.help = help
        self._clock = clock
        self.last_updated: Optional[float] = None

    def _stamp(self) -> None:
        if self._clock is not None:
            self.last_updated = self._clock.now()

    def label_sets(self) -> List[LabelSet]:
        raise NotImplementedError

    def sample_dict(self) -> Dict[str, object]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count, partitioned by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", clock: Optional[Clock] = None):
        super().__init__(name, help, clock)
        self._values: Dict[LabelSet, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount
        self._stamp()

    def value(self, **labels: str) -> float:
        return self._values.get(_labelset(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def label_sets(self) -> List[LabelSet]:
        return sorted(self._values)

    def sample_dict(self) -> Dict[str, object]:
        return {
            _render_labels(ls): value for ls, value in sorted(self._values.items())
        }


class Gauge(Metric):
    """A value that can go up and down (tier usage, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", clock: Optional[Clock] = None):
        super().__init__(name, help, clock)
        self._values: Dict[LabelSet, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_labelset(labels)] = float(value)
        self._stamp()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount
        self._stamp()

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(_labelset(labels), 0.0)

    def label_sets(self) -> List[LabelSet]:
        return sorted(self._values)

    def sample_dict(self) -> Dict[str, object]:
        return {
            _render_labels(ls): value for ls, value in sorted(self._values.items())
        }


class _HistogramCell:
    __slots__ = ("counts", "sum", "count", "reservoir")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative) counts
        self.sum = 0.0
        self.count = 0
        #: the first EXACT_RESERVOIR raw observations, for exact
        #: small-sample quantiles.  Once ``count`` outgrows it the
        #: reservoir stops being representative and quantiles fall back
        #: to bucket interpolation.
        self.reservoir: List[float] = []


class Histogram(Metric):
    """A distribution over fixed buckets, partitioned by labels.

    Buckets are upper bounds (``le`` in Prometheus terms); observations
    above the last bound land in the implicit ``+Inf`` overflow.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        clock: Optional[Clock] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, clock)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self._cells: Dict[LabelSet, _HistogramCell] = {}

    def _cell(self, labels: Dict[str, str]) -> _HistogramCell:
        key = _labelset(labels)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _HistogramCell(len(self.buckets) + 1)
        return cell

    def observe(self, value: float, **labels: str) -> None:
        cell = self._cell(labels)
        idx = len(self.buckets)  # overflow by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        cell.counts[idx] += 1
        cell.sum += value
        cell.count += 1
        if len(cell.reservoir) < EXACT_RESERVOIR:
            cell.reservoir.append(value)
        self._stamp()

    def count(self, **labels: str) -> int:
        cell = self._cells.get(_labelset(labels))
        return cell.count if cell else 0

    def sum(self, **labels: str) -> float:
        cell = self._cells.get(_labelset(labels))
        return cell.sum if cell else 0.0

    def mean(self, **labels: str) -> float:
        cell = self._cells.get(_labelset(labels))
        if not cell or not cell.count:
            return 0.0
        return cell.sum / cell.count

    def quantile(self, q: float, **labels: str) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) of a cell.

        While the cell holds no more observations than its exact-sample
        reservoir, the answer is the exact nearest-rank quantile over
        the raw values.  Beyond that it falls back to linear
        interpolation within the covering bucket; observations in the
        ``+Inf`` overflow bucket report the last finite bound (the
        Prometheus convention).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        cell = self._cells.get(_labelset(labels))
        if cell is None or cell.count == 0:
            return 0.0
        rank = max(1, min(cell.count, _ceil_rank(q, cell.count)))
        if cell.count <= len(cell.reservoir):
            return sorted(cell.reservoir)[rank - 1]
        running = 0
        lower = 0.0
        for bound, n in zip(self.buckets, cell.counts):
            if running + n >= rank:
                fraction = (rank - running) / n
                return lower + (bound - lower) * fraction
            running += n
            lower = bound
        return self.buckets[-1]

    def percentile(self, p: float, **labels: str) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100] (see :meth:`quantile`)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        return self.quantile(p / 100.0, **labels)

    def cumulative(self, **labels: str) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        cell = self._cells.get(_labelset(labels))
        if cell is None:
            return []
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, cell.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + cell.counts[-1]))
        return out

    def label_sets(self) -> List[LabelSet]:
        return sorted(self._cells)

    def sample_dict(self) -> Dict[str, object]:
        """JSON-safe per-cell state: count, sum, cumulative buckets (the
        overflow bound rendered as the string ``"+Inf"`` so snapshots
        survive strict JSON), and precomputed p50/p95/p99."""
        out: Dict[str, object] = {}
        for ls, cell in sorted(self._cells.items()):
            labels = dict(ls)
            buckets: List[List[object]] = []
            running = 0
            for bound, n in zip(self.buckets, cell.counts):
                running += n
                buckets.append([bound, running])
            buckets.append(["+Inf", cell.count])
            out[_render_labels(ls)] = {
                "count": cell.count,
                "sum": cell.sum,
                "buckets": buckets,
                "p50": self.quantile(0.50, **labels),
                "p95": self.quantile(0.95, **labels),
                "p99": self.quantile(0.99, **labels),
            }
        return out


def _ceil_rank(q: float, count: int) -> int:
    """Nearest-rank index: the smallest rank covering fraction ``q``."""
    rank = int(q * count)
    if rank < q * count:
        rank += 1
    return rank


def _render_labels(labelset: LabelSet) -> str:
    """``(("op","get"),("service","s3-1"))`` → ``op=get,service=s3-1``.

    ``\\``, ``,``, and ``=`` inside a key or value are backslash-escaped
    so arbitrary label text (object keys in the heat gauges) stays
    unambiguous; :func:`repro.obs.export.parse_labels` is the inverse.
    """
    def esc(text: str) -> str:
        return (
            text.replace("\\", "\\\\").replace(",", "\\,").replace("=", "\\=")
        )

    return ",".join(f"{esc(k)}={esc(v)}" for k, v in labelset)


class MetricsRegistry:
    """All metric families of one simulated stack, by name.

    Families are created on first use (``registry.counter("x")``) and
    re-fetched idempotently; asking for an existing name with a
    different type is an error.  ``collectors`` are callbacks run just
    before a snapshot so gauges sampled from live state (tier fill,
    object counts) are fresh without polling.
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- family accessors ---------------------------------------------------

    def _family(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help=help, clock=self.clock, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._family(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    # -- collectors ---------------------------------------------------------

    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        self._collectors.append(fn)

    def remove_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        if fn in self._collectors:
            self._collectors.remove(fn)

    def collect(self) -> None:
        for fn in list(self._collectors):
            fn(self)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state of every family, collectors freshly run."""
        self.collect()
        out: Dict[str, object] = {
            "time": self.clock.now() if self.clock is not None else None,
            "metrics": {},
        }
        for metric in self:
            out["metrics"][metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "last_updated": metric.last_updated,
                "samples": metric.sample_dict(),
            }
        return out
