"""Thread-pooled RPC server exposing a TieraServer's API over TCP.

Mirrors the prototype's deployment: "The Tiera server is deployed as a
Thrift server on an EC2 instance … the size of the thread pool dedicated
to service client requests [comes from] the configuration file" (§3).
The pool size is taken from the instance's control layer.
"""

from __future__ import annotations

import socket
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro.core import api
from repro.core.api import BatchOp
from repro.core.errors import (
    BAD_REQUEST,
    TieraError,
    UNKNOWN_METHOD,
    code_for,
)
from repro.core.server import TieraServer
from repro.rpc.protocol import decode_bytes, encode_bytes, read_frame, write_frame
from repro.simcloud.errors import SimCloudError


class TieraRpcServer:
    """Serves PUT/GET/DELETE/stat/tag methods for one Tiera instance."""

    def __init__(
        self,
        tiera: TieraServer,
        host: str = "127.0.0.1",
        port: int = 0,
        pool_size: Optional[int] = None,
    ):
        self.tiera = tiera
        if pool_size is None:
            # Shard routers have no single control layer; fall back to
            # the control-layer default pool size for those.
            instance = getattr(tiera, "instance", None)
            pool_size = (
                instance.control.request_pool_size
                if instance is not None else 8
            )
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="tiera-rpc"
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()
        self._running = False
        self._accept_thread: Optional[threading.Thread] = None
        self._op_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "TieraRpcServer":
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="tiera-rpc-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "TieraRpcServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection handling ---------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self._pool.submit(self._serve_connection, conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while self._running:
                try:
                    request = read_frame(conn)
                except (OSError, ValueError):
                    return
                if request is None:
                    return
                response = self._handle(request)
                try:
                    write_frame(conn, response)
                except OSError:
                    return

    def _handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        request_id = request.get("id")
        method_name = request.get("method", "")
        params = request.get("params") or {}
        handler = getattr(self, f"_method_{method_name}", None)
        if handler is None:
            return _error(request_id, "UnknownMethod", method_name, UNKNOWN_METHOD)
        try:
            # The instance's data structures are not thread-safe; one
            # operation at a time, like a single control-layer worker.
            with self._op_lock:
                result = handler(params)
        except (TieraError, SimCloudError) as exc:
            return _error(request_id, type(exc).__name__, str(exc), code_for(exc))
        except (KeyError, ValueError, TypeError, AttributeError) as exc:
            # AttributeError covers instance-only verbs called against a
            # shard router (which has no single ``.instance``).
            return _error(request_id, "BadRequest", str(exc), BAD_REQUEST)
        return {"id": request_id, "result": result}

    # -- methods ------------------------------------------------------------------

    def _method_put_object(self, params: Dict[str, Any]) -> Dict[str, Any]:
        tags = params.get("tags")
        result = self.tiera.put_object(
            params["key"],
            decode_bytes(params["data"]),
            tags=list(tags) if tags else None,
        )
        return result.to_wire(encode_bytes)

    def _method_get_object(self, params: Dict[str, Any]) -> Dict[str, Any]:
        result = self.tiera.get_object(
            params["key"], prefer=params.get("prefer")
        )
        return result.to_wire(encode_bytes)

    def _method_delete_object(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.tiera.delete_object(params["key"]).to_wire(encode_bytes)

    def _method_batch(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Run a batch of ops, overlapped server-side in virtual time.

        Item failures come back inside their envelopes (never as an RPC
        error); an over-limit batch raises backpressure out of
        ``execute_batch``, which :meth:`_handle` maps to the
        ``BACKPRESSURE`` error code.
        """
        ops = [BatchOp.from_wire(wire, decode_bytes) for wire in params["ops"]]
        batch = self.tiera.execute_batch(
            ops,
            parallelism=int(params.get("parallelism", api.DEFAULT_PARALLELISM)),
        )
        return {
            "results": [r.to_wire(encode_bytes) for r in batch.results],
            "latency": batch.latency,
            "parallelism": batch.parallelism,
            "code": batch.code,
        }

    # -- legacy single-op wire methods (kept for protocol compatibility) ----

    def _method_put(self, params: Dict[str, Any]) -> Dict[str, Any]:
        result = self.tiera.put_object(
            params["key"],
            decode_bytes(params["data"]),
            tags=list(params.get("tags") or []) or None,
        ).raise_for_error()
        return {"latency": result.latency}

    def _method_get(self, params: Dict[str, Any]) -> Dict[str, Any]:
        result = self.tiera.get_object(params["key"]).raise_for_error()
        return {"data": encode_bytes(result.value)}

    def _method_delete(self, params: Dict[str, Any]) -> Dict[str, Any]:
        result = self.tiera.delete_object(params["key"]).raise_for_error()
        return {"latency": result.latency}

    def _method_contains(self, params: Dict[str, Any]) -> bool:
        return self.tiera.contains(params["key"])

    def _method_stat(self, params: Dict[str, Any]) -> Dict[str, Any]:
        meta = self.tiera.stat(params["key"])
        return {
            "key": meta.key,
            "size": meta.size,
            "locations": sorted(meta.locations),
            "dirty": meta.dirty,
            "tags": sorted(meta.tags),
            "access_count": meta.access_count,
            "version": meta.version,
        }

    def _method_add_tag(self, params: Dict[str, Any]) -> bool:
        self.tiera.add_tag(params["key"], params["tag"])
        return True

    def _method_keys(self, params: Dict[str, Any]) -> list:
        tag = params.get("tag")
        if tag is not None:
            return self.tiera.keys_with_tag(tag)
        return self.tiera.keys()

    def _method_ping(self, params: Dict[str, Any]) -> str:
        return "pong"

    # -- introspection verbs (STATS / TRACE / HEALTH) -----------------------

    def _method_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Observability snapshot: JSON by default, Prometheus text on
        ``format="prometheus"``."""
        from repro.obs.export import render_prometheus, stats_snapshot

        obs = self.tiera.obs
        if params.get("format") == "prometheus":
            return {"format": "prometheus", "text": render_prometheus(obs.metrics)}
        return stats_snapshot(obs, audit_limit=int(params.get("audit_limit", 50)))

    def _method_trace(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Inspect (and optionally toggle) per-request tracing."""
        tracer = self.tiera.obs.tracer
        if "enable" in params:
            tracer.enabled = bool(params["enable"])
        limit = int(params.get("limit", 10))
        return {
            "enabled": tracer.enabled,
            "dropped": tracer.dropped,
            "traces": [span.to_dict() for span in tracer.recent(limit)],
        }

    def _method_health(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.tiera.health()

    def _method_profile(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The server's accumulated profile: wall-clock sections from
        served requests, virtual-time attribution from the registry,
        and a per-component rollup of retained traces.

        ``reset=true`` clears the wall-section tree after reporting, so
        the next call profiles a fresh window.
        """
        from repro.obs.profiler import trace_breakdown, virtual_breakdown

        obs = self.tiera.obs
        wall = obs.profiler.wall_report()
        report = {
            "measured_wall_seconds": wall["total_seconds"],
            "coverage": 1.0,
            "wall": wall,
            "virtual": virtual_breakdown(None, obs.metrics.snapshot()),
            "traces": trace_breakdown(obs.tracer.recent()),
        }
        if params.get("reset"):
            obs.profiler.reset()
        return report

    def _method_slo(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Inspect (and optionally configure) the SLO engine.

        ``install_defaults=true`` installs the canned objectives when
        none are present; ``objectives=[{...}]`` installs explicit ones
        (fields of :class:`~repro.obs.slo.SloObjective`).
        """
        from repro.obs.slo import SloObjective, default_slos

        engine = self.tiera.obs.slo
        if params.get("install_defaults") and not engine.objectives:
            engine.install(default_slos())
        for spec in params.get("objectives") or []:
            engine.install([SloObjective(**spec)])
        if not engine.objectives:
            return {"objectives": [], "breaching": [], "alerting": []}
        return engine.summary()

    def _method_resilience(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Inspect (and optionally enable / kick) the resilience layer.

        ``enable=true`` turns the layer on; ``replay=true`` kicks a
        repair-queue replay for every tier that looks reachable.
        """
        instance = self.tiera.instance
        if params.get("enable"):
            instance.enable_resilience()
        res = instance.resilience
        if res is None:
            return {"enabled": False}
        out: Dict[str, Any] = {"enabled": True}
        if params.get("replay"):
            out["replay_kicked"] = res.replay_pending()
        out.update(res.summary())
        return out

    def _method_heat(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Inspect (and optionally enable/configure) heat telemetry.

        ``enable=true`` turns the tracker on first; configuration
        keywords (``windows=``, ``top_k=``, ``max_objects=``,
        ``sample_interval=``, ``hot_min=``) pass through to
        :meth:`~repro.obs.heat.HeatTracker.enable`.  Works against both
        a single instance and a shard router (per-shard aggregation);
        answers ``{"enabled": False}`` until enabled.
        """
        if params.get("enable"):
            config = {
                name: params[name]
                for name in (
                    "windows", "top_k", "max_objects",
                    "sample_interval", "hot_min",
                )
                if params.get(name) is not None
            }
            with warnings.catch_warnings():
                # The shim's own warning is for in-process callers; the
                # wire verb is not itself deprecated.
                warnings.simplefilter("ignore", DeprecationWarning)
                self.tiera.enable_heat(**config)
        limit = params.get("limit")
        return self.tiera.heat_summary(
            limit=int(limit) if limit is not None else None
        )

    # -- unified management API ---------------------------------------------

    def _method_configure(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Enable or retune a feature; see :class:`ManagementAPI`.

        Error codes (``UNKNOWN_FEATURE``, ``BAD_CONFIG``) ride inside
        the envelope, never as RPC-level errors, so the rehydrated
        result compares equal to the direct façade's.
        """
        options = params.get("options") or {}
        return self.tiera.configure(params["feature"], **options).to_wire()

    def _method_feature_status(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.tiera.feature_status(params["feature"]).to_wire()

    def _method_placement(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Placement introspection: ``action`` is ``status`` (default),
        ``plan`` (score without moving), or ``run`` (one cycle now)."""
        action = params.get("action", "status")
        if action == "status":
            return self.tiera.placement_status()
        if action == "plan":
            return self.tiera.placement_plan()
        if action == "run":
            return self.tiera.placement_run()
        raise ValueError(f"unknown placement action {action!r}")

    # -- durability verbs (FSCK / SNAPSHOT / RESTORE) -----------------------

    def _method_fsck(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Cross-check metadata against tier contents; ``repair=true``
        fixes what it finds (see :func:`repro.core.durability.fsck`)."""
        from repro.core.durability import fsck

        return fsck(self.tiera.instance, repair=bool(params.get("repair")))

    def _method_snapshot(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """A barman-style full snapshot: deterministic tar archive of
        the instance's durable state, returned inline with its manifest."""
        from repro.core.durability import snapshot_archive

        blob, manifest = snapshot_archive(
            self.tiera.instance,
            include_volatile=bool(params.get("include_volatile")),
        )
        return {"archive": encode_bytes(blob), "manifest": manifest}

    def _method_restore(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Replace the instance's entire state with a snapshot archive's."""
        from repro.core.durability import restore_archive

        return restore_archive(
            self.tiera.instance, decode_bytes(params["archive"])
        )

    def _method_backup(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Backup lifecycle verbs, dispatched on ``action``:
        ``snapshot`` / ``restore`` / ``prune`` / ``verify`` / ``list`` /
        ``mark_immutable`` / ``status``.  Requires backups enabled on
        the instance (``enable=true`` with a ``root`` attaches one)."""
        instance = self.tiera.instance
        if params.get("enable") and instance.backup is None:
            instance.enable_backups(str(params["root"]))
        manager = instance.backup
        if manager is None:
            return {"enabled": False}
        action = str(params.get("action", "status"))
        if action == "snapshot":
            entry = manager.snapshot(
                kind=str(params.get("kind", "auto")),
                immutable=bool(params.get("immutable")),
            )
            return {"enabled": True, "snapshot": entry}
        if action == "restore":
            to_seq = params.get("to_seq")
            to_time = params.get("to_time")
            snapshot_id = params.get("snapshot_id")
            return {
                "enabled": True,
                "restore": manager.restore(
                    to_seq=int(to_seq) if to_seq is not None else None,
                    to_time=(
                        float(to_time) if to_time is not None else None
                    ),
                    snapshot_id=(
                        int(snapshot_id) if snapshot_id is not None else None
                    ),
                ),
            }
        if action == "prune":
            keep_last = params.get("keep_last")
            keep_window = params.get("keep_window")
            return {
                "enabled": True,
                "prune": manager.prune(
                    keep_last=(
                        int(keep_last) if keep_last is not None else None
                    ),
                    keep_window=(
                        float(keep_window) if keep_window is not None
                        else None
                    ),
                ),
            }
        if action == "verify":
            return {"enabled": True, "verify": manager.verify_restore()}
        if action == "list":
            return {"enabled": True, "snapshots": manager.list_snapshots()}
        if action == "mark_immutable":
            return {
                "enabled": True,
                "snapshot": manager.mark_immutable(
                    int(params["snapshot_id"])
                ),
            }
        if action == "status":
            return {"enabled": True, "status": manager.health_summary()}
        raise ValueError(f"unknown backup action {action!r}")

    def _method_cluster(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Replicated-cluster verbs, dispatched on ``action``:
        ``status`` / ``fsck`` / ``replay`` / ``anti_entropy``.  Answers
        ``{"enabled": False}`` when the server is not a replicated shard
        router (single instances and replication-off routers)."""
        manager = getattr(self.tiera, "cluster", None)
        if manager is None:
            return {"enabled": False}
        action = str(params.get("action", "status"))
        if action == "status":
            return {"enabled": True, "status": manager.summary()}
        if action == "fsck":
            return {
                "enabled": True,
                "fsck": manager.fsck(repair=bool(params.get("repair"))),
            }
        if action == "replay":
            return {
                "enabled": True,
                "replay": manager.replay_hints(params.get("target")),
            }
        if action == "anti_entropy":
            return {"enabled": True, "anti_entropy": manager.anti_entropy()}
        raise ValueError(f"unknown cluster action {action!r}")

    def _method_tiers(self, params: Dict[str, Any]) -> list:
        return [
            {
                "name": tier.name,
                "kind": tier.kind,
                "capacity": tier.capacity,
                "used": tier.used,
                "available": tier.available,
            }
            for tier in self.tiera.instance.tiers
        ]


def _error(
    request_id, error_type: str, message: str, code: str
) -> Dict[str, Any]:
    return {
        "id": request_id,
        "error": {"code": code, "type": error_type, "message": message},
    }
