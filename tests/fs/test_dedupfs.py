"""DedupFileSystem over a storeOnce instance (the Figure 12 client)."""

import pytest

from repro.core.server import TieraServer
from repro.core.templates import dedup_instance
from repro.fs.dedupfs import DedupFileSystem


@pytest.fixture
def dedupfs(registry):
    instance = dedup_instance(registry, mem="64K")
    return DedupFileSystem(TieraServer(instance))


class TestDedupFS:
    def test_duplicate_blocks_stored_once(self, dedupfs):
        block = bytes(range(256)) * 16  # exactly 4 KB
        with dedupfs.open("/f", "w") as handle:
            handle.write(block * 4)  # four identical blocks
        stats = dedupfs.dedup_stats()
        # 1 canonical data block + 3 aliases (+ the inode object).
        assert stats["aliased_objects"] == 3
        assert stats["savings"] > 0.5

    def test_distinct_blocks_kept(self, dedupfs):
        with dedupfs.open("/f", "w") as handle:
            handle.write(bytes([1]) * 4096 + bytes([2]) * 4096)
        stats = dedupfs.dedup_stats()
        assert stats["aliased_objects"] == 0

    def test_cross_file_dedup(self, dedupfs):
        block = b"\x07" * 4096
        for path in ("/a", "/b", "/c"):
            with dedupfs.open(path, "w") as handle:
                handle.write(block)
        assert dedupfs.dedup_stats()["aliased_objects"] == 2
        # Every file still reads its own content back.
        for path in ("/a", "/b", "/c"):
            with dedupfs.open(path, "r") as handle:
                assert handle.read() == block

    def test_s3_put_count_reflects_dedup(self, dedupfs):
        s3 = dedupfs.server.instance.tiers.get("tier2").service
        block = b"\x09" * 4096
        with dedupfs.open("/f", "w") as handle:
            handle.write(block * 8)
        # Only one data block reached S3 (plus inode-object updates).
        assert s3.put_requests <= 3

    def test_unlink_alias_preserves_canonical(self, dedupfs):
        block = b"\x0a" * 4096
        with dedupfs.open("/a", "w") as handle:
            handle.write(block)
        with dedupfs.open("/b", "w") as handle:
            handle.write(block)
        dedupfs.unlink("/b")
        with dedupfs.open("/a", "r") as handle:
            assert handle.read() == block

    def test_unlink_canonical_promotes_alias(self, dedupfs):
        block = b"\x0b" * 4096
        with dedupfs.open("/a", "w") as handle:
            handle.write(block)
        with dedupfs.open("/b", "w") as handle:
            handle.write(block)
        dedupfs.unlink("/a")
        with dedupfs.open("/b", "r") as handle:
            assert handle.read() == block
