"""The control layer on real (wall-clock) time.

Everything else in the suite drives SimClock; these tests confirm the
same policy machinery works when timers are real threads — the mode the
RPC server and the CLI's ``serve`` command run in.
"""

import time

import pytest

from repro.core.events import ActionEvent, TimerEvent
from repro.core.instance import TieraInstance
from repro.core.policy import Policy, Rule
from repro.core.responses import Copy, Store
from repro.core.selectors import InsertObject, ObjectsWhere
from repro.core.conditions import AttrRef, Comparison, Literal
from repro.core.server import TieraServer
from repro.simcloud.clock import WallClock
from repro.simcloud.cluster import Cluster
from repro.tiers.registry import TierRegistry


@pytest.fixture
def wall_stack():
    clock = WallClock()
    cluster = Cluster(clock=clock)
    registry = TierRegistry(cluster)
    yield clock, registry
    clock.shutdown()


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestWallClockControl:
    def test_timer_rule_fires_on_real_time(self, wall_stack):
        clock, registry = wall_stack
        tiers = [
            registry.create("Memcached", tier_name="tier1", size=10 ** 6),
            registry.create("EBS", tier_name="tier2", size=10 ** 7),
        ]
        in_tier1 = ObjectsWhere(
            Comparison("==", AttrRef(("object", "location")), Literal("tier1"))
        )
        instance = TieraInstance(
            name="wall",
            tiers=tiers,
            policy=Policy([
                Rule(ActionEvent("insert"), [Store(InsertObject(), "tier1")],
                     name="place"),
                Rule(TimerEvent(0.05), [Copy(in_tier1, "tier2")],
                     name="fast-write-back"),
            ]),
            clock=clock,
        )
        server = TieraServer(instance)
        server.put("k", b"v")
        assert instance.meta("k").locations == {"tier1"}
        assert wait_for(lambda: "tier2" in instance.meta("k").locations)
        instance.shutdown()

    def test_shutdown_stops_real_timers(self, wall_stack):
        clock, registry = wall_stack
        from repro.core.responses import Response

        tiers = [registry.create("Memcached", tier_name="tier1", size=10 ** 6)]
        fired = []

        class Probe(Response):
            def execute(self, scope, ctx):
                fired.append(time.monotonic())
        instance = TieraInstance(
            name="wall2",
            tiers=tiers,
            policy=Policy([Rule(TimerEvent(0.05), [Probe()], name="tick")]),
            clock=clock,
        )
        assert wait_for(lambda: len(fired) >= 2)
        instance.shutdown()
        count = len(fired)
        time.sleep(0.2)
        assert len(fired) <= count + 1  # at most one in-flight straggler
