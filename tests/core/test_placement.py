"""The heat-driven adaptive placement engine (ROADMAP item 1, acting half).

Covers the planner's determinism and scoring asymmetries (sketch-gated
admission vs EWMA-driven eviction), the damping machinery (hysteresis,
capacity pressure, refine swaps), the executor's metrics/audit side
effects, the management-API envelopes, and the ``adaptive_placement``
spec primitive.
"""

import pytest

from repro.core.errors import BadConfigError, UnknownFeatureError
from repro.core.placement import OBJECTIVES, expected_latency
from repro.core.policy import PolicyError, Rule
from repro.core.responses import Store
from repro.core.selectors import InsertObject
from repro.core.events import ActionEvent
from repro.core.server import TieraServer
from repro.simcloud.resources import RequestContext
from repro.spec import compile_spec
from tests.core.conftest import build_instance

KB = 1024


def cold_instance(registry, mem=16 * KB, ebs=10 ** 7):
    """Two tiers with inserts pinned to the slow one, so every placement
    in the fast tier is the engine's own doing."""
    return build_instance(
        registry,
        [("tier1", "Memcached", mem), ("tier2", "EBS", ebs)],
        rules=[Rule(
            ActionEvent("insert"),
            [Store(InsertObject(), ("tier2",))],
            name="persist-only",
        )],
        name="placement-test",
    )


def enable(instance, **overrides):
    config = dict(
        interval=5.0, min_score=0.0, max_moves=8, prewarm_limit=4,
        refine=True, start_timer=False,
    )
    config.update(overrides)
    instance.enable_heat(windows=(10.0, 60.0), top_k=16, hot_min=2)
    return instance.enable_placement(**config)


def heat_up(server, key, ctx, times=4, gap=0.5):
    for _ in range(times):
        server.get_object(key, ctx=ctx).raise_for_error()
        ctx.wait(gap)


class TestScoring:
    def test_expected_latency_is_deterministic(self, registry):
        instance = cold_instance(registry)
        tier1 = instance.tiers.get("tier1")
        a = expected_latency(tier1.service.latency, 4096)
        b = expected_latency(tier1.service.latency, 4096)
        assert a == b > 0

    def test_tier_order_ranks_fast_to_slow(self, registry):
        engine = enable(cold_instance(registry))
        assert engine._tier_order() == ["tier1", "tier2"]

    def test_objective_presets_reweight_the_same_move(self, registry):
        engine = enable(cold_instance(registry))
        scores = {}
        for objective in OBJECTIVES:
            engine.reconfigure(objective=objective)
            scores[objective] = engine.score_move(2.0, "tier2", "tier1", 4096)
        # Promotion buys latency and costs storage dollars: the latency
        # objective must love it the most, the cost objective the least.
        assert scores["latency"] > scores["balanced"] > scores["cost"]

    def test_demotion_scores_invert_the_preference(self, registry):
        engine = enable(cold_instance(registry))
        engine.reconfigure(objective="cost")
        cost = engine.score_move(0.0, "tier1", "tier2", 4096)
        engine.reconfigure(objective="latency")
        latency = engine.score_move(0.0, "tier1", "tier2", 4096)
        assert cost > latency > 0  # cold data always wants the cheap tier


class TestPlanning:
    def test_sketch_confirmed_hot_key_is_promoted(self, registry, cluster, ctx):
        instance = cold_instance(registry)
        server = TieraServer(instance)
        engine = enable(instance)
        server.put_object("hot", b"h" * 256, ctx=ctx)
        server.put_object("cold", b"c" * 256, ctx=ctx)
        heat_up(server, "hot", ctx)
        plan = engine.plan()
        moves = {d["key"]: d for d in plan["decisions"]}
        assert moves["hot"]["action"] == "promote"
        assert moves["hot"]["from"] == "tier2"
        assert moves["hot"]["to"] == "tier1"
        assert "cold" not in moves

    def test_plan_is_pure_and_repeatable(self, registry, cluster, ctx):
        instance = cold_instance(registry)
        server = TieraServer(instance)
        engine = enable(instance)
        server.put_object("hot", b"h" * 256, ctx=ctx)
        heat_up(server, "hot", ctx)
        first = engine.plan()
        second = engine.plan()
        assert first == second
        assert engine.moves == 0 and engine.cycles == 0
        assert instance.meta("hot").locations == {"tier2"}

    def test_single_access_never_pollutes_the_fast_tier(
        self, registry, cluster, ctx
    ):
        # A scan one-off spikes the EWMA to 1/window, but the sketch's
        # hot_min gate (guaranteed count) keeps it out of the plan.
        # Load before enabling heat: the put itself counts as an access.
        instance = cold_instance(registry)
        server = TieraServer(instance)
        server.put_object("hot", b"h" * 256, ctx=ctx)
        server.put_object("scanned", b"s" * 256, ctx=ctx)
        engine = enable(instance)
        heat_up(server, "hot", ctx)
        server.get_object("scanned", ctx=ctx).raise_for_error()
        plan = engine.plan()
        assert [d["key"] for d in plan["decisions"]] == ["hot"]

    def test_prewarm_label_and_limit(self, registry, cluster, ctx):
        instance = cold_instance(registry)
        server = TieraServer(instance)
        engine = enable(instance, prewarm_limit=1)
        server.put_object("idle", b"i" * 256, ctx=ctx)
        heat_up(server, "idle", ctx)
        ctx.wait(engine.interval * 3)  # confirmed-hot but not recent
        cluster.clock.run_until(ctx.time)
        plan = engine.plan()
        moves = {d["key"]: d for d in plan["decisions"]}
        assert moves["idle"]["action"] == "prewarm"
        assert moves["idle"]["reason"] == "predicted-hot"
        engine.reconfigure(prewarm_limit=0)
        plan = engine.plan()
        assert plan["decisions"] == []
        assert {"key": "idle", "reason": "prewarm-limit"} in plan["skipped"]

    def test_hysteresis_pins_recently_moved_keys(self, registry, cluster, ctx):
        instance = cold_instance(registry)
        server = TieraServer(instance)
        engine = enable(instance, hysteresis=10 ** 6)
        server.put_object("hot", b"h" * 256, ctx=ctx)
        heat_up(server, "hot", ctx)
        engine.run_cycle(ctx)
        assert "tier1" in instance.meta("hot").locations
        ctx.wait(1000.0)  # EWMA collapses: the key now wants demoting
        cluster.clock.run_until(ctx.time)
        plan = engine.plan()
        assert plan["decisions"] == []
        assert {"key": "hot", "reason": "hysteresis"} in plan["skipped"]

    def test_ex_hot_key_demotes_once_its_rate_decays(
        self, registry, cluster, ctx
    ):
        # Sketch counts never decay — eviction must follow the EWMA.
        instance = cold_instance(registry)
        server = TieraServer(instance)
        engine = enable(instance, hysteresis=0.0)
        server.put_object("hot", b"h" * 256, ctx=ctx)
        heat_up(server, "hot", ctx)
        engine.run_cycle(ctx)
        assert "tier1" in instance.meta("hot").locations
        assert instance.obs.heat.is_hot("hot")
        ctx.wait(1000.0)
        cluster.clock.run_until(ctx.time)
        plan = engine.plan()
        moves = {d["key"]: d for d in plan["decisions"]}
        assert moves["hot"]["action"] == "demote"
        assert moves["hot"]["reason"] == "cold"
        engine.run_cycle(ctx)
        assert instance.meta("hot").locations == {"tier2"}

    def test_refine_swaps_blocked_promotion_with_cold_resident(
        self, registry, cluster, ctx
    ):
        # tier1 holds exactly one record; a colder resident must make
        # way for a hotter blocked promotion — but only when refine is on.
        instance = cold_instance(registry, mem=300)
        server = TieraServer(instance)
        engine = enable(instance, hysteresis=0.0)
        server.put_object("warm", b"w" * 256, ctx=ctx)
        server.put_object("blazing", b"b" * 256, ctx=ctx)
        heat_up(server, "warm", ctx, times=3)
        engine.run_cycle(ctx)
        assert "tier1" in instance.meta("warm").locations
        heat_up(server, "blazing", ctx, times=8, gap=0.1)
        engine.reconfigure(refine=False)
        plan = engine.plan()
        assert {"key": "blazing", "reason": "capacity"} in plan["skipped"]
        engine.reconfigure(refine=True)
        plan = engine.plan()
        by_key = {d["key"]: d for d in plan["decisions"]}
        assert by_key["blazing"]["reason"] == "refine-swap"
        assert by_key["warm"]["action"] == "demote"
        assert not any(s["reason"] == "capacity" for s in plan["skipped"])

    def test_capacity_pressure_penalizes_near_full_destinations(
        self, registry
    ):
        engine = enable(cold_instance(registry, mem=10 * KB),
                        high_watermark=0.5)
        projected = {"tier1": 9 * KB}
        assert engine._pressure(projected, "tier1", 512) > 0.0
        assert engine._pressure({"tier1": 0}, "tier1", 512) == 0.0


class TestExecution:
    def test_run_cycle_moves_data_metrics_and_audit(
        self, registry, cluster, ctx
    ):
        instance = cold_instance(registry)
        server = TieraServer(instance)
        engine = enable(instance)
        server.put_object("hot", b"h" * 256, ctx=ctx)
        heat_up(server, "hot", ctx)
        plan = engine.run_cycle(ctx)
        assert plan["decisions"][0]["applied"] is True
        assert "tier1" in instance.meta("hot").locations
        assert engine.cycles == 1 and engine.moves == 1
        assert engine.bytes_moved == 256
        snap = instance.obs.metrics.snapshot()["metrics"]
        assert sum(
            snap["tiera_placement_moves_total"]["samples"].values()
        ) == 1
        records = instance.obs.audit.records(category="placement")
        assert len(records) == 1
        assert records[0].name == "adaptive-balanced"
        assert records[0].detail["actions"] == {"promote": 1}

    def test_timer_cadence_runs_cycles(self, registry, cluster, ctx):
        instance = cold_instance(registry)
        server = TieraServer(instance)
        instance.enable_heat(windows=(10.0, 60.0), hot_min=2)
        engine = instance.enable_placement(interval=2.0, min_score=0.0)
        assert engine.running
        server.put_object("hot", b"h" * 256, ctx=ctx)
        heat_up(server, "hot", ctx)
        cluster.clock.run_until(ctx.time + 10.0)
        assert engine.cycles >= 4
        assert "tier1" in instance.meta("hot").locations
        engine.stop()
        cycles = engine.cycles
        cluster.clock.run_until(ctx.time + 50.0)
        assert engine.cycles == cycles

    def test_shutdown_detaches_the_timer(self, registry, cluster):
        instance = cold_instance(registry)
        engine = instance.enable_placement(interval=2.0)
        assert engine.running
        instance.shutdown()
        assert not engine.running


class TestReconfigure:
    def test_unknown_objective_is_refused(self, registry):
        engine = enable(cold_instance(registry))
        with pytest.raises(ValueError, match="unknown objective"):
            engine.reconfigure(objective="yolo")

    def test_unknown_option_is_refused(self, registry):
        engine = enable(cold_instance(registry))
        with pytest.raises(TypeError, match="unknown placement option"):
            engine.reconfigure(burst_mode=True)

    def test_validation_happens_before_mutation(self, registry):
        engine = enable(cold_instance(registry), max_moves=7)
        with pytest.raises(ValueError):
            engine.reconfigure(max_moves=3, interval=-1.0)
        assert engine.max_moves == 7

    def test_hysteresis_tracks_interval_until_set_explicitly(self, registry):
        engine = enable(cold_instance(registry), interval=5.0)
        assert engine.hysteresis == 10.0
        engine.reconfigure(interval=3.0)
        assert engine.hysteresis == 6.0
        engine.reconfigure(hysteresis=42.0)
        engine.reconfigure(interval=1.0)
        assert engine.hysteresis == 42.0

    def test_enable_placement_is_idempotent_reconfigure(self, registry):
        instance = cold_instance(registry)
        engine = instance.enable_placement(interval=5.0, start_timer=False)
        again = instance.enable_placement(objective="cost")
        assert again is engine
        assert engine.objective == "cost"
        assert engine.interval == 5.0

    def test_enable_placement_turns_heat_on(self, registry):
        instance = cold_instance(registry)
        assert not instance.obs.heat.enabled
        instance.enable_placement(start_timer=False)
        assert instance.obs.heat.enabled


class TestManagementEnvelopes:
    def test_unknown_feature_code(self, registry):
        server = TieraServer(cold_instance(registry))
        result = server.configure("flux-capacitor", power="1.21GW")
        assert not result.ok
        assert result.error == "UNKNOWN_FEATURE"
        with pytest.raises(UnknownFeatureError):
            result.raise_for_error()
        status = server.feature_status("flux-capacitor")
        assert status.error == "UNKNOWN_FEATURE"

    def test_bad_config_code(self, registry):
        server = TieraServer(cold_instance(registry))
        result = server.configure("placement", objective="yolo")
        assert not result.ok
        assert result.error == "BAD_CONFIG"
        assert "objective" in result.error_message
        assert result.enabled is False  # refused config must not enable
        with pytest.raises(BadConfigError):
            result.raise_for_error()

    def test_configure_then_status_round_trip(self, registry):
        server = TieraServer(cold_instance(registry))
        assert server.feature_status("placement").enabled is False
        result = server.configure(
            "placement", objective="cost", interval=30.0,
        )
        assert result.ok and result.enabled
        assert result.state["objective"] == "cost"
        status = server.feature_status("placement")
        assert status.state["interval"] == 30.0
        assert status.state["cycles"] == 0

    def test_placement_verbs_before_enable(self, registry):
        server = TieraServer(cold_instance(registry))
        assert server.placement_status() == {"enabled": False}
        assert server.placement_plan() == {"enabled": False}
        assert server.placement_run() == {"enabled": False}

    def test_health_reports_placement(self, registry):
        server = TieraServer(cold_instance(registry))
        server.configure("placement", interval=9.0).raise_for_error()
        doc = server.health()
        assert doc["placement"]["running"] is True


SPEC_WITH_PLACEMENT = """
Tiera AdaptiveInstance(time t) {
    tier1: { name: Memcached, size: 64K };
    tier2: { name: EBS, size: 10M };
    event(insert.into) : response {
        store(what: insert.object, to: tier2);
    }
    event(time=t) : response {
        adaptive_placement(objective: latency, interval: 30);
    }
}
"""


class TestSpecPrimitive:
    def test_rule_driven_engine_has_no_own_timer(self, registry, cluster):
        instance = compile_spec(SPEC_WITH_PLACEMENT, registry, args={"t": 10})
        server = TieraServer(instance)
        ctx = RequestContext(cluster.clock)
        server.put_object("hot", b"h" * 256, ctx=ctx)
        # Drain the clock between accesses so the rule's timer fires
        # mid-stream: the first firing enables heat tracking, the later
        # ones see a sketch-confirmed hot key and promote it.
        for _ in range(20):
            server.get_object("hot", ctx=ctx).raise_for_error()
            ctx.wait(2.0)
            cluster.clock.run_until(ctx.time)
        engine = instance.placement
        assert engine is not None
        assert engine.objective == "latency"
        assert not engine.running       # cadence comes from the rule
        assert engine.cycles >= 2
        assert "tier1" in instance.meta("hot").locations

    def test_bad_objective_is_a_compile_error(self, registry):
        bad = SPEC_WITH_PLACEMENT.replace("latency", "warp9")
        with pytest.raises(PolicyError, match="objective"):
            compile_spec(bad, registry, args={"t": 10})

    def test_bad_interval_is_a_compile_error(self, registry):
        bad = SPEC_WITH_PLACEMENT.replace("interval: 30", "interval: 0")
        with pytest.raises(PolicyError, match="interval"):
            compile_spec(bad, registry, args={"t": 10})
