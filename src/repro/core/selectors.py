"""Object selectors: the ``what:`` clause of a response.

A response names the objects it operates on through a selector —
``insert.object`` (the object that triggered the action event), a
predicate over metadata (``object.location == tier1 && object.dirty ==
true``), a tier-recency reference (``tier1.oldest``), explicit names,
or an object class (tag).  Selectors resolve to a list of object keys
against the live metadata table at response-execution time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.conditions import Condition, EvalScope
from repro.core.errors import PolicyError, UnknownTierError


class Selector(ABC):
    """Resolves to the keys a response should act on."""

    @abstractmethod
    def resolve(self, scope: EvalScope) -> List[str]:
        """Keys selected in ``scope``, in a deterministic order."""


class InsertObject(Selector):
    """``insert.object`` — the object carried by the triggering action."""

    def resolve(self, scope: EvalScope) -> List[str]:
        if scope.action is None:
            raise PolicyError("insert.object used outside an action context")
        return [scope.action.key]

    def __repr__(self) -> str:
        return "InsertObject()"


@dataclass
class NamedObjects(Selector):
    """An explicit list of object keys."""

    keys: Tuple[str, ...]

    def __init__(self, *keys: str):
        object.__setattr__(self, "keys", tuple(keys))

    def resolve(self, scope: EvalScope) -> List[str]:
        return [k for k in self.keys if scope.instance.has_object(k)]


@dataclass
class TaggedObjects(Selector):
    """All objects of a class (sharing a tag) — §2.1's object classes."""

    tag: str

    def resolve(self, scope: EvalScope) -> List[str]:
        return sorted(
            meta.key
            for meta in scope.instance.iter_meta()
            if self.tag in meta.tags
        )


class AllObjects(Selector):
    """Every object the instance knows about."""

    def resolve(self, scope: EvalScope) -> List[str]:
        return sorted(meta.key for meta in scope.instance.iter_meta())

    def __repr__(self) -> str:
        return "AllObjects()"


@dataclass
class ObjectsWhere(Selector):
    """All objects whose metadata satisfies a predicate.

    This is the general ``what: object.<attr> ...`` form; the write-back
    policy of Figure 3 uses ``object.location == tier1 && object.dirty
    == true``.
    """

    predicate: Condition

    def resolve(self, scope: EvalScope) -> List[str]:
        selected = []
        for meta in scope.instance.iter_meta():
            obj_scope = EvalScope(
                instance=scope.instance, action=scope.action, obj=meta
            )
            if self.predicate.truthy(obj_scope):
                selected.append(meta.key)
        return sorted(selected)


@dataclass
class TierOldest(Selector):
    """``tierX.oldest`` — the least recently used object in a tier."""

    tier_name: str

    def resolve(self, scope: EvalScope) -> List[str]:
        if not scope.instance.tiers.has(self.tier_name):
            raise UnknownTierError(self.tier_name)
        key = scope.instance.tiers.get(self.tier_name).oldest
        return [key] if key is not None else []


@dataclass
class TierNewest(Selector):
    """``tierX.newest`` — the most recently used object in a tier."""

    tier_name: str

    def resolve(self, scope: EvalScope) -> List[str]:
        if not scope.instance.tiers.has(self.tier_name):
            raise UnknownTierError(self.tier_name)
        key = scope.instance.tiers.get(self.tier_name).newest
        return [key] if key is not None else []
