"""The TPC-W online bookstore (§4.1.2).

The paper deploys the bookstore bundled with the TPC-W benchmark —
MySQL behind, Apache Tomcat in front, static HTML and images on disk —
and drives it with emulated browsers running the read-dominant
*shopping mix*.  This package rebuilds that application on minidb:

* :mod:`repro.apps.bookstore.catalog` — schema and data generation
  (10,000 items / 100,000 customers, the paper's population);
* :mod:`repro.apps.bookstore.app` — the server: web interactions that
  combine database transactions, static-content reads, and app-server
  CPU time;
* :mod:`repro.apps.bookstore.browser` — emulated browsers with the
  shopping-mix transition probabilities and think time.
"""

from repro.apps.bookstore.app import BookstoreApp
from repro.apps.bookstore.browser import EmulatedBrowser, SHOPPING_MIX

__all__ = ["BookstoreApp", "EmulatedBrowser", "SHOPPING_MIX"]
