"""Closed-loop load driver over the virtual timeline.

Simulates N concurrent clients, each issuing its next request the
moment the previous one completes (plus optional think time) — the
model behind "8 threads" of sysbench or "25 emulated browsers" of
TPC-W.  The driver keeps the simulation honest by advancing the
:class:`~repro.simcloud.clock.SimClock` to each request's issue instant
before running it, so timer events and background responses interleave
with client requests in true time order, and requests contend on the
services' virtual-time resources.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.bench.metrics import LatencyRecorder, TimeSeries
from repro.core.errors import TieraError
from repro.simcloud.clock import SimClock
from repro.simcloud.errors import SimCloudError
from repro.simcloud.resources import RequestContext

# op_fn(client_id, ctx) -> optional label for per-operation metrics
OpFn = Callable[[int, RequestContext], Optional[str]]


@dataclass
class RunResult:
    """What a closed-loop run produced."""

    duration: float
    operations: int = 0
    errors: int = 0
    latencies: LatencyRecorder = field(default_factory=LatencyRecorder)
    throughput_series: Optional[TimeSeries] = None
    latency_series: Optional[TimeSeries] = None

    @property
    def throughput(self) -> float:
        """Successful operations per second over the measured window."""
        return self.operations / self.duration if self.duration > 0 else 0.0


def run_closed_loop(
    clock: SimClock,
    clients: int,
    duration: float,
    op_fn: OpFn,
    think_time: float = 0.0,
    warmup: float = 0.0,
    series_bucket: Optional[float] = None,
    start_stagger: float = 0.0,
) -> RunResult:
    """Drive ``clients`` closed-loop clients for ``duration`` seconds.

    The measured window is ``[start + warmup, start + duration]``;
    operations completing inside it are recorded.  ``series_bucket``
    additionally produces per-bucket throughput and mean-latency series
    (measured from the run's start, including warmup, since the
    time-series figures plot the whole window).  Failed operations
    (Tiera/cloud errors) count as errors; the client retries its next
    request after the failure's elapsed time plus think time.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    if duration <= 0:
        raise ValueError("duration must be positive")
    start = clock.now()
    end = start + duration
    measure_from = start + warmup
    result = RunResult(duration=duration - warmup)
    if series_bucket is not None:
        result.throughput_series = TimeSeries(series_bucket)
        result.latency_series = TimeSeries(series_bucket)

    # (next issue time, client id) — stagger optional to avoid lockstep.
    heap: List[Tuple[float, int]] = [
        (start + i * start_stagger, i) for i in range(clients)
    ]
    heapq.heapify(heap)

    while heap:
        issue_at, client = heapq.heappop(heap)
        if issue_at >= end:
            continue
        # Fire timers/background work due before this request starts.
        if issue_at > clock.now():
            clock.run_until(issue_at)
        ctx = RequestContext(clock, at=issue_at)
        failed = False
        label: Optional[str] = None
        try:
            label = op_fn(client, ctx)
        except (TieraError, SimCloudError):
            failed = True
        finished = ctx.time
        relative = finished - start
        if failed:
            result.errors += 1
        elif finished <= end and finished >= measure_from:
            result.operations += 1
            result.latencies.record(ctx.elapsed, label)
            if result.throughput_series is not None:
                result.throughput_series.record(relative, 1.0)
                result.latency_series.record(relative, ctx.elapsed)
        heapq.heappush(heap, (finished + think_time, client))

    if clock.now() < end:
        clock.run_until(end)
    return result
