"""Simulated S3 bucket.

Tens-of-milliseconds latency, effectively unlimited capacity, very cheap
per GB, highly parallel, extremely durable — and billed *per request*,
which is why the ``storeOnce`` experiment (Figure 12) reports the raw
number of S3 PUT/GET requests alongside latency.
"""

from __future__ import annotations

from repro.simcloud.latency import objectstore_latency
from repro.simcloud.services.base import StorageService


class SimObjectStore(StorageService):
    kind = "s3"
    durable = True
    persistent = True

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("latency", objectstore_latency())
        kwargs.setdefault("channels", 16)
        kwargs.setdefault("capacity", None)  # S3 has no provisioned cap
        super().__init__(*args, **kwargs)

    @property
    def put_requests(self) -> int:
        return self.op_counts.get("put", 0)

    @property
    def get_requests(self) -> int:
        return self.op_counts.get("get", 0) + self.op_counts.get("miss", 0)

    @property
    def total_requests(self) -> int:
        """All billable requests made against the bucket."""
        return sum(self.op_counts.values())
