"""Clocks: simulated (discrete-event) and wall-clock time sources.

The paper's experiments run for minutes of real time (Figures 16 and 17
are 10-14 minute windows).  To reproduce them deterministically and
quickly, all time-dependent behaviour in this repository is written
against the :class:`Clock` interface.  Experiments use :class:`SimClock`,
a discrete-event scheduler whose time advances only when asked; the RPC
server and interactive examples use :class:`WallClock`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from abc import ABC, abstractmethod
from typing import Callable, List, Optional


class Timer:
    """Handle for a scheduled callback; ``cancel()`` prevents it firing."""

    __slots__ = ("when", "callback", "cancelled", "_wall_timer")

    def __init__(self, when: float, callback: Callable[[], None]):
        self.when = when
        self.callback = callback
        self.cancelled = False
        self._wall_timer: Optional[threading.Timer] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._wall_timer is not None:
            self._wall_timer.cancel()


class Clock(ABC):
    """A source of time plus a callback scheduler."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds."""

    @abstractmethod
    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` after ``delay`` seconds; returns a cancellable handle."""

    def schedule_repeating(
        self, interval: float, callback: Callable[[], None]
    ) -> Timer:
        """Run ``callback`` every ``interval`` seconds until cancelled.

        The returned handle cancels the *whole* repetition.  The first
        firing happens one full interval from now, matching the paper's
        timer events ("at the end of a specified time period").
        """
        if interval <= 0:
            raise ValueError("repeating interval must be positive")
        handle = Timer(self.now() + interval, callback)

        def fire() -> None:
            if handle.cancelled:
                return
            callback()
            if not handle.cancelled:
                inner = self.schedule(interval, fire)
                handle.when = inner.when
                handle._wall_timer = inner._wall_timer

        inner = self.schedule(interval, fire)
        handle._wall_timer = inner._wall_timer
        return handle


class SimClock(Clock):
    """Deterministic discrete-event clock.

    Time is a float starting at zero and moves only through
    :meth:`advance`, :meth:`run_until`, or :meth:`run_all`.  Scheduled
    callbacks fire in timestamp order (FIFO among equal timestamps) as
    time passes over them.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._queue: List = []
        self._counter = itertools.count()

    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        handle = Timer(self._now + delay, callback)
        heapq.heappush(self._queue, (handle.when, next(self._counter), handle))
        return handle

    def pending(self) -> int:
        """Number of not-yet-cancelled callbacks waiting to fire."""
        return sum(1 for _, _, h in self._queue if not h.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest pending callback, or ``None``."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0][0]

    def run_until(self, deadline: float) -> None:
        """Fire every callback due at or before ``deadline``, then set time."""
        if deadline < self._now:
            raise ValueError("cannot run backwards in time")
        while self._queue and self._queue[0][0] <= deadline:
            when, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = when
            handle.callback()
        self._now = deadline

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds, firing due callbacks."""
        self.run_until(self._now + dt)

    def cancel_all(self) -> int:
        """Cancel every pending callback; returns how many were live.

        Used by crash simulation: a dead process takes its scheduled
        background work (write-backs, repair replays) with it, and the
        crash harnesses own the whole cluster, so clearing the queue
        wholesale is the faithful model.
        """
        live = self.pending()
        for _, _, handle in self._queue:
            handle.cancelled = True
        self._queue.clear()
        return live

    def run_all(self, limit: int = 1_000_000) -> None:
        """Drain the queue entirely (bounded by ``limit`` firings)."""
        fired = 0
        while self._queue:
            when, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = when
            handle.callback()
            fired += 1
            if fired >= limit:
                raise RuntimeError(
                    "SimClock.run_all exceeded %d events; repeating timer?" % limit
                )


class WallClock(Clock):
    """Real time, for the RPC server and live demos.

    Callbacks run on daemon :class:`threading.Timer` threads.  Call
    :meth:`shutdown` to cancel everything scheduled through this clock.
    """

    def __init__(self):
        self._epoch = time.monotonic()
        self._timers: List[Timer] = []
        self._lock = threading.Lock()

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        handle = Timer(self.now() + delay, callback)

        def fire() -> None:
            if not handle.cancelled:
                callback()

        wall = threading.Timer(delay, fire)
        wall.daemon = True
        handle._wall_timer = wall
        with self._lock:
            self._timers.append(handle)
            self._timers = [t for t in self._timers if not t.cancelled]
        wall.start()
        return handle

    def shutdown(self) -> None:
        with self._lock:
            timers, self._timers = self._timers, []
        for handle in timers:
            handle.cancel()
