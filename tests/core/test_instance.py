"""TieraInstance: data path, eviction chains, dedup, reconfiguration, cost."""

import pytest

from repro.core.errors import (
    NoCapacityError,
    NoSuchObjectError,
    TierUnavailableError,
)
from repro.core.instance import DROP
from repro.core.policy import Rule
from repro.core.events import ActionEvent
from repro.core.responses import Store
from repro.core.selectors import InsertObject
from repro.kvstore import LogStore
from repro.simcloud.resources import RequestContext
from tests.core.conftest import build_instance


class TestDataPath:
    def test_write_updates_metadata(self, two_tier, ctx):
        two_tier.create_object("k", 3)
        two_tier.write_to_tier("k", b"abc", "tier1", ctx)
        meta = two_tier.meta("k")
        assert meta.locations == {"tier1"}
        assert meta.size == 3

    def test_read_prefers_declaration_order(self, two_tier, ctx):
        two_tier.create_object("k", 1)
        two_tier.write_to_tier("k", b"x", "tier1", ctx)
        two_tier.write_to_tier("k", b"x", "tier2", ctx)
        gets_before = two_tier.tiers.get("tier1").service.op_counts.get("get", 0)
        two_tier.read_raw("k", ctx)
        assert (
            two_tier.tiers.get("tier1").service.op_counts.get("get", 0)
            == gets_before + 1
        )

    def test_read_prefer_overrides(self, two_tier, ctx):
        two_tier.create_object("k", 1)
        two_tier.write_to_tier("k", b"x", "tier1", ctx)
        two_tier.write_to_tier("k", b"x", "tier2", ctx)
        two_tier.read_raw("k", ctx, prefer="tier2")
        assert two_tier.tiers.get("tier2").service.op_counts.get("get", 0) == 1

    def test_read_falls_back_on_failure(self, two_tier, ctx):
        two_tier.create_object("k", 1)
        two_tier.write_to_tier("k", b"x", "tier1", ctx)
        two_tier.write_to_tier("k", b"x", "tier2", ctx)
        two_tier.tiers.get("tier1").service.fail()
        assert two_tier.read_raw("k", ctx) == b"x"

    def test_read_with_all_tiers_failed(self, two_tier, ctx):
        two_tier.create_object("k", 1)
        two_tier.write_to_tier("k", b"x", "tier2", ctx)
        two_tier.tiers.get("tier2").service.fail()
        with pytest.raises(TierUnavailableError):
            two_tier.read_raw("k", ctx)

    def test_missing_object_raises(self, two_tier, ctx):
        with pytest.raises(NoSuchObjectError):
            two_tier.read_raw("ghost", ctx)

    def test_overflow_without_eviction_raises(self, two_tier, ctx):
        two_tier.create_object("big", 100 * 1024)
        with pytest.raises(NoCapacityError):
            two_tier.write_to_tier("big", b"x" * 100 * 1024, "tier1", ctx)

    def test_rewrite_everywhere(self, two_tier, ctx):
        two_tier.create_object("k", 4)
        two_tier.write_to_tier("k", b"aaaa", "tier1", ctx)
        two_tier.write_to_tier("k", b"aaaa", "tier2", ctx)
        two_tier.rewrite_everywhere("k", b"bb", ctx)
        assert two_tier.tiers.get("tier1").get("k", ctx) == b"bb"
        assert two_tier.tiers.get("tier2").get("k", ctx) == b"bb"
        assert two_tier.meta("k").size == 2


class TestEvictionChain:
    def test_cascading_eviction(self, registry, ctx):
        inst = build_instance(
            registry,
            [
                ("tier1", "Memcached", 8192),
                ("tier2", "EBS", 8192),
                ("tier3", "S3", None),
            ],
        )
        inst.eviction_chain.update({"tier1": "tier2", "tier2": "tier3"})
        for i in range(6):
            inst.create_object(f"k{i}", 4096)
            inst.write_to_tier(f"k{i}", bytes(4096), "tier1", ctx)
        # 6 x 4K through a 8K tier over an 8K tier: oldest land in S3.
        assert inst.meta("k0").locations == {"tier3"}
        assert inst.meta("k1").locations == {"tier3"}
        assert inst.meta("k2").locations == {"tier2"}
        assert inst.meta("k5").locations == {"tier1"}

    def test_drop_eviction_requires_second_copy(self, registry, ctx):
        inst = build_instance(
            registry,
            [("cache", "Memcached", 4096), ("store", "S3", None)],
        )
        inst.eviction_chain["cache"] = DROP
        inst.create_object("a", 4096)
        inst.write_to_tier("a", bytes(4096), "cache", ctx)
        inst.write_to_tier("a", bytes(4096), "store", ctx)
        inst.create_object("b", 4096)
        inst.write_to_tier("b", bytes(4096), "cache", ctx)  # drops a
        assert inst.meta("a").locations == {"store"}
        assert inst.meta("b").locations == {"cache"}

    def test_drop_eviction_refuses_to_lose_data(self, registry, ctx):
        inst = build_instance(
            registry, [("cache", "Memcached", 4096), ("store", "S3", None)]
        )
        inst.eviction_chain["cache"] = DROP
        inst.create_object("only", 4096)
        inst.write_to_tier("only", bytes(4096), "cache", ctx)  # not in store
        inst.create_object("b", 4096)
        with pytest.raises(NoCapacityError):
            inst.write_to_tier("b", bytes(4096), "cache", ctx)


class TestDedup:
    def test_alias_lifecycle(self, two_tier, ctx):
        two_tier.create_object("a", 4)
        two_tier.write_to_tier("a", b"data", "tier1", ctx)
        two_tier.dedup_register("sum1", "a")
        two_tier.create_object("b", 4)
        two_tier.alias_object("b", "a")
        assert two_tier.resolve_alias("b") == "a"
        assert two_tier.meta("a").refcount == 1
        # Deleting the alias releases the refcount.
        two_tier.delete_object("b", ctx)
        assert two_tier.meta("a").refcount == 0

    def test_deleting_canonical_promotes_heir(self, two_tier, ctx):
        two_tier.create_object("a", 4)
        two_tier.write_to_tier("a", b"data", "tier1", ctx)
        two_tier.dedup_register("sum1", "a")
        two_tier.create_object("b", 4)
        two_tier.alias_object("b", "a")
        two_tier.delete_object("a", ctx)
        assert two_tier.meta("b").alias_of is None
        assert two_tier.dedup_lookup("sum1") == "b"
        # The heir must still be readable — from a's physical bytes.
        assert two_tier.read_raw("b", ctx) == b"data"

    def test_dedup_lookup_forgets_dead_keys(self, two_tier, ctx):
        two_tier.create_object("a", 4)
        two_tier.write_to_tier("a", b"data", "tier1", ctx)
        two_tier.dedup_register("sum1", "a")
        two_tier.delete_object("a", ctx)
        assert two_tier.dedup_lookup("sum1") is None


class TestReconfiguration:
    def test_add_and_remove_tiers(self, registry, two_tier, ctx):
        new_tier = registry.create("EphemeralStorage", tier_name="tier3", size=10 ** 6)
        two_tier.reconfigure(add_tiers=[new_tier], remove_tiers=["tier1"])
        assert two_tier.tiers.names() == ["tier2", "tier3"]

    def test_removing_tier_scrubs_locations(self, two_tier, ctx):
        two_tier.create_object("k", 1)
        two_tier.write_to_tier("k", b"x", "tier1", ctx)
        two_tier.write_to_tier("k", b"x", "tier2", ctx)
        two_tier.reconfigure(remove_tiers=["tier1"])
        assert two_tier.meta("k").locations == {"tier2"}

    def test_rule_changes(self, two_tier):
        rule = Rule(ActionEvent("insert"), [Store(InsertObject(), "tier2")], name="n")
        two_tier.reconfigure(add_rules=[rule])
        assert two_tier.policy.rule("n") is rule
        two_tier.reconfigure(remove_rules=["n"])
        assert len(two_tier.policy) == 0

    def test_replace_policy_wholesale(self, two_tier):
        rule = Rule(ActionEvent("insert"), [Store(InsertObject(), "tier2")], name="n")
        two_tier.reconfigure(replace_policy=[rule])
        assert [r.name for r in two_tier.policy] == ["n"]


class TestCostAccounting:
    def test_monthly_cost_by_kind(self, registry):
        inst = build_instance(
            registry,
            [("m", "Memcached", 1024 ** 3), ("e", "EBS", 1024 ** 3)],
        )
        assert inst.monthly_cost() == pytest.approx(35.0 + 0.10)

    def test_s3_costed_by_usage(self, registry, ctx):
        inst = build_instance(registry, [("s", "S3", None)])
        inst.create_object("k", 1024 * 1024)
        inst.write_to_tier("k", b"x" * 1024 * 1024, "s", ctx)
        expected = 0.03 / 1024  # 1 MiB at $0.03/GB-month
        assert inst.monthly_cost() == pytest.approx(expected)

    def test_colocated_tier_costs_nothing(self, registry):
        cache = registry.create(
            "Memcached", tier_name="m", size=1024 ** 3, colocated=True
        )
        from repro.core.instance import TieraInstance

        inst = TieraInstance(
            name="x", tiers=[cache], clock=registry.cluster.clock
        )
        assert inst.monthly_cost() == 0.0


class TestMetadataPersistence:
    def test_metadata_survives_restart(self, registry, tmp_path, ctx):
        path = str(tmp_path / "meta.db")
        inst = build_instance(
            registry,
            [("tier1", "Memcached", 10 ** 6), ("tier2", "EBS", 10 ** 7)],
            metadata_store=LogStore(path),
        )
        inst.create_object("k", 3, tags={"keep"})
        inst.write_to_tier("k", b"abc", "tier2", ctx)
        inst.shutdown()
        # A new server process over the same metadata store and tiers.
        restarted = build_instance(
            registry,
            [("tier1b", "Memcached", 10 ** 6), ("tier2b", "EBS", 10 ** 7)],
            metadata_store=LogStore(path),
        )
        meta = restarted.meta("k")
        assert meta.size == 3
        assert "keep" in meta.tags
        assert meta.locations == {"tier2"}
