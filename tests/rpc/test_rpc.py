"""RPC server/client over real sockets (WallClock instances)."""

import threading

import pytest

from repro.core.instance import TieraInstance
from repro.core.policy import Policy, Rule
from repro.core.events import ActionEvent
from repro.core.responses import Store
from repro.core.selectors import InsertObject
from repro.core.server import TieraServer
from repro.rpc import RpcError, TieraClient, TieraRpcServer
from repro.simcloud.clock import WallClock
from repro.simcloud.cluster import Cluster
from repro.tiers.registry import TierRegistry


@pytest.fixture
def live_server():
    clock = WallClock()
    cluster = Cluster(clock=clock)
    registry = TierRegistry(cluster)
    tiers = [
        registry.create("Memcached", tier_name="tier1", size=64 * 1024 * 1024),
        registry.create("EBS", tier_name="tier2", size=64 * 1024 * 1024),
    ]
    instance = TieraInstance(
        name="rpc-test",
        tiers=tiers,
        policy=Policy([
            Rule(
                ActionEvent("insert"),
                [Store(InsertObject(), ("tier1", "tier2"))],
                name="write-through",
            )
        ]),
        clock=clock,
    )
    rpc = TieraRpcServer(TieraServer(instance), port=0).start()
    yield rpc
    rpc.stop()
    instance.shutdown()
    clock.shutdown()


@pytest.fixture
def client(live_server):
    with TieraClient(live_server.host, live_server.port) as conn:
        yield conn


class TestRpcRoundtrip:
    def test_ping(self, client):
        assert client.ping()

    def test_put_get(self, client):
        latency = client.put("k", b"remote bytes")
        assert latency >= 0
        assert client.get("k") == b"remote bytes"

    def test_binary_safety(self, client):
        payload = bytes(range(256)) * 8
        client.put("bin", payload)
        assert client.get("bin") == payload

    def test_delete_and_contains(self, client):
        client.put("k", b"v")
        assert client.contains("k")
        client.delete("k")
        assert not client.contains("k")

    def test_stat(self, client):
        client.put("k", b"hello", tags=["web"])
        stat = client.stat("k")
        assert stat["size"] == 5
        assert stat["tags"] == ["web"]
        assert sorted(stat["locations"]) == ["tier1", "tier2"]

    def test_tags_and_keys(self, client):
        client.put("a", b"1", tags=["x"])
        client.put("b", b"2")
        client.add_tag("b", "x")
        assert client.keys(tag="x") == ["a", "b"]
        assert client.keys() == ["a", "b"]

    def test_tiers_listing(self, client):
        tiers = client.tiers()
        assert [t["name"] for t in tiers] == ["tier1", "tier2"]
        assert all(t["available"] for t in tiers)

    def test_missing_key_error(self, client):
        with pytest.raises(RpcError) as excinfo:
            client.get("ghost")
        assert excinfo.value.error_type == "NoSuchObjectError"

    def test_unknown_method(self, live_server, client):
        with pytest.raises(RpcError) as excinfo:
            client._call("explode")
        assert excinfo.value.error_type == "UnknownMethod"


class TestIntrospection:
    def test_stats_snapshot(self, client):
        client.put("k", b"v")
        snap = client.stats()
        requests = snap["metrics"]["tiera_requests_total"]["samples"]
        assert requests["op=put"] == 1
        assert snap["audit"]["appended"] >= 1
        assert snap["traces"]["enabled"] is False

    def test_stats_prometheus_text(self, client):
        client.put("k", b"v")
        text = client.stats(format="prometheus")
        assert isinstance(text, str)
        assert "# TYPE tiera_requests_total counter" in text
        assert 'tiera_requests_total{op="put"} 1' in text

    def test_trace_toggle_and_fetch(self, client):
        result = client.trace(enable=True)
        assert result["enabled"] is True
        client.put("k", b"v")
        client.get("k")
        result = client.trace(limit=5, enable=False)
        assert result["enabled"] is False
        ops = [t["attrs"]["op"] for t in result["traces"]]
        assert ops == ["put", "get"]
        get_trace = result["traces"][-1]
        assert get_trace["attrs"]["served_by"] in ("tier1", "tier2")

    def test_health(self, client):
        client.put("k", b"v")
        health = client.health()
        assert health["status"] == "ok"
        assert health["objects"] == 1
        assert health["rules_fired"] == {"write-through": 1}

    def test_cli_stats_summary(self, live_server, capsys):
        from repro.cli import main

        with TieraClient(live_server.host, live_server.port) as conn:
            conn.put("k", b"v")
        assert main(
            ["stats", "--port", str(live_server.port)]
        ) == 0
        out = capsys.readouterr().out
        assert "instance rpc-test — status ok" in out
        assert "tier tier1 (memcached)" in out
        assert "rules fired: write-through×1" in out

    def test_cli_stats_prometheus(self, live_server, capsys):
        from repro.cli import main

        assert main(
            ["stats", "--port", str(live_server.port), "--format", "prometheus"]
        ) == 0
        assert "# TYPE tiera_tier_ops_total counter" in capsys.readouterr().out

    def test_cli_stats_json(self, live_server, capsys):
        import json

        from repro.cli import main

        assert main(
            ["stats", "--port", str(live_server.port), "--format", "json"]
        ) == 0
        snap = json.loads(capsys.readouterr().out)
        assert "metrics" in snap and "audit" in snap

    def test_cli_stats_connection_refused(self, capsys):
        from repro.cli import main

        assert main(["stats", "--port", "1"]) == 1
        assert "cannot connect" in capsys.readouterr().err


class TestConcurrency:
    def test_parallel_clients(self, live_server):
        errors = []

        def worker(worker_id):
            try:
                with TieraClient(live_server.host, live_server.port) as conn:
                    for i in range(20):
                        key = f"w{worker_id}-{i}"
                        conn.put(key, key.encode())
                        assert conn.get(key) == key.encode()
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []

    def test_sequential_requests_one_connection(self, client):
        for i in range(50):
            client.put(f"k{i}", b"x")
        assert len(client.keys()) == 50


class TestDurabilityVerbs:
    def test_fsck_clean_over_rpc(self, client):
        client.put("k", b"bytes")
        report = client.fsck()
        assert report["clean"] is True
        assert report["counts"]["findings"] == 0

    def test_fsck_repair_flag_round_trips(self, client):
        client.put("k", b"bytes")
        report = client.fsck(repair=True)
        assert report["repair"] is True

    def test_snapshot_restore_roundtrip(self, client):
        for i in range(3):
            client.put(f"obj{i}", b"payload-%d" % i)
        result = client.snapshot()
        manifest = result["manifest"]
        assert manifest["objects"] == 3
        assert result["archive"][:8]  # non-empty tar bytes

        client.delete("obj0")
        client.put("obj9", b"post-snapshot write")
        restored = client.restore(result["archive"])
        assert restored["verified"] is True
        assert client.contains("obj0")
        assert not client.contains("obj9")
        assert client.get("obj1") == b"payload-1"

    def test_restore_rejects_garbage_archive(self, client):
        with pytest.raises(RpcError):
            client.restore(b"this is not a tar archive")

    def test_cli_fsck(self, live_server, capsys):
        from repro.cli import main

        code = main(["fsck", "--port", str(live_server.port)])
        assert code == 0
        assert '"clean": true' in capsys.readouterr().out

    def test_cli_snapshot_and_restore(self, live_server, capsys, tmp_path):
        from repro.cli import main

        with TieraClient(live_server.host, live_server.port) as conn:
            conn.put("cli-obj", b"cli bytes")
        archive = str(tmp_path / "backup.tar")
        port = str(live_server.port)
        assert main(["snapshot", "--port", port, "--out", archive]) == 0
        assert "1 objects" in capsys.readouterr().out
        with TieraClient(live_server.host, live_server.port) as conn:
            conn.delete("cli-obj")
        assert main(["restore", archive, "--port", port]) == 0
        assert '"verified": true' in capsys.readouterr().out
        with TieraClient(live_server.host, live_server.port) as conn:
            assert conn.get("cli-obj") == b"cli bytes"


class TestBackupVerbs:
    def test_disabled_store_reports_disabled(self, client):
        assert client.backup() == {"enabled": False}

    def test_lifecycle_round_trip(self, client, tmp_path):
        client.put("obj0", b"v0" * 64)
        status = client.backup(enable=True, root=str(tmp_path / "bk"))
        assert status["enabled"] is True

        full = client.backup(action="snapshot", kind="full")["snapshot"]
        assert full["kind"] == "full"
        client.put("obj1", b"v1" * 64)
        inc = client.backup(action="snapshot")["snapshot"]
        assert inc["kind"] == "incremental"
        assert inc["parent"] == full["id"]

        listing = client.backup(action="list")["snapshots"]
        assert [e["id"] for e in listing] == [full["id"], inc["id"]]

        verify = client.backup(action="verify")["verify"]
        assert verify["ok"] is True

        frozen = client.backup(
            action="mark_immutable", snapshot_id=full["id"]
        )["snapshot"]
        assert frozen["immutable"] is True
        # keep_last=1 cannot orphan the chain: nothing is pruned.
        assert client.backup(action="prune", keep_last=1)["prune"][
            "pruned"
        ] == []

        status = client.backup()["status"]
        assert status["snapshots"] == 2
        assert status["last_verified_restore"]["ok"] is True

    def test_restore_to_seq_over_rpc(self, client, tmp_path):
        client.backup(enable=True, root=str(tmp_path / "bk"))
        client.put("k", b"v1" * 64)
        client.backup(action="snapshot", kind="full")
        client.put("k", b"v2" * 64)
        target = client.backup()["status"]["wal"]["last_seq"]
        client.put("k", b"v3" * 64)
        restore = client.backup(action="restore", to_seq=target)["restore"]
        assert restore["to_seq"] == target
        assert restore["replayed"] > 0
        assert client.get("k") == b"v2" * 64

    def test_backup_errors_have_a_stable_code(self, client, tmp_path):
        client.backup(enable=True, root=str(tmp_path / "bk"))
        with pytest.raises(RpcError) as excinfo:
            client.backup(action="restore", to_seq=10 ** 9)
        assert excinfo.value.code == "BACKUP_ERROR"

    def test_cli_backup_commands(self, live_server, capsys, tmp_path):
        from repro.cli import main

        port = str(live_server.port)
        # Not enabled yet: a clean error, not a traceback.
        assert main(["backup", "list", "--port", port]) == 1
        assert "not enabled" in capsys.readouterr().err

        with TieraClient(live_server.host, live_server.port) as conn:
            conn.put("cli-obj", b"cli bytes")
            conn.backup(enable=True, root=str(tmp_path / "bk"))

        assert main([
            "backup", "snapshot", "--port", port, "--kind", "full",
        ]) == 0
        assert '"kind": "full"' in capsys.readouterr().out
        assert main(["backup", "list", "--port", port]) == 0
        assert "#1 full:" in capsys.readouterr().out
        assert main(["backup", "verify", "--port", port]) == 0
        assert '"ok": true' in capsys.readouterr().out
        assert main(["backup", "prune", "--port", port,
                     "--keep-last", "5"]) == 0
        assert '"pruned": []' in capsys.readouterr().out


class TestClusterVerb:
    @pytest.fixture
    def cluster_rpc(self):
        from repro.bench.failover import build_shard_cluster
        from repro.core.cluster import ClusterConfig

        sim, router, _, _ = build_shard_cluster(
            shards=3, config=ClusterConfig(replication_factor=2)
        )
        rpc = TieraRpcServer(router, port=0).start()
        yield rpc, router
        rpc.stop()
        router.cluster.stop()

    def test_not_a_cluster_answers_disabled(self, client):
        assert client.cluster() == {"enabled": False}

    def test_status_fsck_replay_and_anti_entropy(self, cluster_rpc):
        rpc, router = cluster_rpc
        with TieraClient(rpc.host, rpc.port) as conn:
            conn.put("ck", b"cluster bytes")
            assert conn.get("ck") == b"cluster bytes"

            status = conn.cluster()["status"]
            assert status["replicas"] == 2
            assert set(status["shards"]) == set(router.shards)
            assert all(s == "up" for s in status["shards"].values())

            assert conn.cluster("fsck")["fsck"]["clean"]
            assert conn.cluster("replay")["replay"]["replayed"] == 0
            assert conn.cluster("anti_entropy")["anti_entropy"][
                "divergent"] == 0
            assert conn.health()["cluster"]["hints"]["pending"] == 0

    def test_unknown_action_is_a_bad_request(self, cluster_rpc):
        rpc, _ = cluster_rpc
        with TieraClient(rpc.host, rpc.port) as conn:
            with pytest.raises(RpcError) as excinfo:
                conn.cluster("explode")
            assert excinfo.value.code == "BAD_REQUEST"

    def test_instance_only_verbs_fail_cleanly_on_a_router(self, cluster_rpc):
        rpc, _ = cluster_rpc
        with TieraClient(rpc.host, rpc.port) as conn:
            with pytest.raises(RpcError) as excinfo:
                conn.tiers()
            assert excinfo.value.code == "BAD_REQUEST"
