"""The deterministic fault-injection engine (repro.simcloud.faults)."""

import json

import pytest

from repro.simcloud.cluster import Cluster
from repro.simcloud.errors import TransientServiceError
from repro.simcloud.faults import (
    SCENARIOS,
    ChaosScenario,
    FaultEvent,
    FaultProfile,
)
from repro.simcloud.latency import FixedLatency
from repro.simcloud.resources import RequestContext
from repro.simcloud.services import SimBlockVolume, SimMemcached


@pytest.fixture
def env(cluster):
    node = cluster.add_node("svc-node", zone="us-east-1a")
    return cluster, node


def make(cls, env, name="svc", **kwargs):
    cluster, node = env
    kwargs.setdefault("latency", FixedLatency(0.001))
    kwargs.setdefault("faults", cluster.faults)
    return cls(
        name=name, node=node, clock=cluster.clock, rng=cluster.rng, **kwargs
    )


def ctx_for(env):
    return RequestContext(env[0].clock)


class TestInertWhenIdle:
    def test_no_active_faults_draws_no_randomness(self, env):
        cluster, _ = env
        svc = make(SimMemcached, env)
        state = cluster.faults.rng.getstate()
        for i in range(10):
            svc.put(f"k{i}", b"v" * 64, ctx_for(env))
            svc.get(f"k{i}", ctx_for(env))
        assert cluster.faults.rng.getstate() == state
        assert not cluster.faults.active
        assert cluster.faults.counts == {}

    def test_wired_injector_matches_unwired_timing(self, env):
        cluster, _ = env
        wired = make(SimMemcached, env, name="wired")
        bare = make(SimMemcached, env, name="bare", faults=None)
        for svc in (wired, bare):
            ctx = ctx_for(env)
            svc.put("k", b"v" * 128, ctx)
            svc.get("k", ctx)
            svc._last_elapsed = ctx.elapsed
        assert wired._last_elapsed == bare._last_elapsed


class TestTargeting:
    def test_match_by_service_node_zone_kind_and_star(self, env):
        cluster, _ = env
        svc = make(SimBlockVolume, env, name="vol-a")
        boom = FaultProfile(name="boom", error_rate=1.0)
        for target in (
            "service:vol-a",
            "node:svc-node",
            "zone:us-east-1a",
            "kind:ebs",
            "*",
        ):
            fault = cluster.faults.inject(target, boom)
            with pytest.raises(TransientServiceError):
                svc.put("k", b"v", ctx_for(env))
            cluster.faults.clear(fault)

    def test_nonmatching_target_leaves_service_alone(self, env):
        cluster, _ = env
        svc = make(SimMemcached, env)
        fault = cluster.faults.inject(
            "kind:ebs", FaultProfile(name="boom", error_rate=1.0)
        )
        svc.put("k", b"v", ctx_for(env))  # memcached: untouched
        cluster.faults.clear(fault)

    def test_bad_target_rejected_eagerly(self, env):
        cluster, _ = env
        with pytest.raises(ValueError):
            cluster.faults.inject("bogus:x", FaultProfile(error_rate=1.0))


class TestProfiles:
    def test_transient_error_charges_configured_latency(self, env):
        cluster, _ = env
        svc = make(SimMemcached, env)
        cluster.faults.inject(
            "*", FaultProfile(name="e", error_rate=1.0, error_latency=0.25)
        )
        ctx = ctx_for(env)
        with pytest.raises(TransientServiceError) as info:
            svc.put("k", b"v", ctx)
        assert ctx.elapsed == pytest.approx(0.25)
        # The error identifies where it happened (node + zone).
        assert info.value.node == "svc-node"
        assert info.value.zone == "us-east-1a"
        assert cluster.faults.counts["transient-error"] == 1

    def test_transient_error_defaults_to_service_time(self, env):
        cluster, _ = env
        svc = make(SimMemcached, env)
        cluster.faults.inject("*", FaultProfile(name="e", error_rate=1.0))
        ctx = ctx_for(env)
        with pytest.raises(TransientServiceError):
            svc.put("k", b"v", ctx)
        assert ctx.elapsed == pytest.approx(0.001)  # ran, then errored

    def test_latency_spike_inflates_service_time(self, env):
        cluster, _ = env
        svc = make(SimMemcached, env)
        cluster.faults.inject(
            "*", FaultProfile(name="slow", latency_multiplier=10.0)
        )
        ctx = ctx_for(env)
        svc.put("k", b"v", ctx)
        assert ctx.elapsed == pytest.approx(0.010)
        assert cluster.faults.counts["latency"] == 1

    def test_gray_ramp_grows_with_active_minutes(self, env):
        cluster, _ = env
        svc = make(SimMemcached, env)
        cluster.faults.inject(
            "*", FaultProfile(name="gray", gray_ramp_per_minute=4.0)
        )
        ctx = ctx_for(env)
        svc.put("k", b"v", ctx)
        assert ctx.elapsed == pytest.approx(0.001)  # minute 0: no ramp yet
        cluster.clock.advance(60.0)
        ctx = ctx_for(env)
        svc.get("k", ctx)
        assert ctx.elapsed == pytest.approx(0.005)  # 1 + 4×1 minutes

    def test_flapping_alternates_up_and_down(self, env):
        cluster, _ = env
        svc = make(SimMemcached, env)
        cluster.faults.inject(
            "*", FaultProfile(name="flap", flap_period=20.0, flap_duty=0.5)
        )
        svc.put("k", b"v", ctx_for(env))  # phase 0: up
        cluster.clock.advance(10.0)       # phase 0.5: down
        ctx = ctx_for(env)
        with pytest.raises(TransientServiceError):
            svc.get("k", ctx)
        assert ctx.elapsed == pytest.approx(svc.timeout)  # burned like fail()
        cluster.clock.advance(10.0)       # next period: up again
        assert svc.get("k", ctx_for(env)) == b"v"

    def test_bitrot_is_silent_and_persistent(self, env):
        cluster, _ = env
        svc = make(SimMemcached, env)
        svc.put("k", b"\x00" * 32, ctx_for(env))
        fault = cluster.faults.inject(
            "*", FaultProfile(name="rot", corrupt_rate=1.0)
        )
        first = svc.get("k", ctx_for(env))  # succeeds, but one bit flipped
        assert first != b"\x00" * 32
        cluster.faults.clear(fault)
        # The flipped bit stays: corruption is in the stored copy.
        assert svc.get("k", ctx_for(env)) == first
        assert cluster.faults.counts["corruption"] == 1


class TestScheduling:
    def test_inject_auto_clears_after_duration(self, env):
        cluster, _ = env
        svc = make(SimMemcached, env)
        cluster.faults.inject(
            "*", FaultProfile(name="e", error_rate=1.0), duration=10.0
        )
        assert cluster.faults.active
        cluster.clock.advance(11.0)
        assert not cluster.faults.active
        svc.put("k", b"v", ctx_for(env))  # back to normal

    def test_scenario_schedules_apply_and_clear(self, env):
        cluster, _ = env
        scenario = ChaosScenario(
            name="window",
            events=(
                FaultEvent(
                    at=60.0,
                    duration=120.0,
                    target="*",
                    profile=FaultProfile(name="e", error_rate=1.0),
                ),
            ),
        )
        cluster.chaos(scenario, at=0.0)
        assert not cluster.faults.active
        cluster.clock.run_until(61.0)
        assert cluster.faults.active
        cluster.clock.run_until(181.0)
        assert not cluster.faults.active
        schedule = cluster.faults.report()["schedule"]
        assert [(e["event"], e["time"]) for e in schedule] == [
            ("apply", 60.0),
            ("clear", 180.0),
        ]
        assert all(e["scenario"] == "window" for e in schedule)

    def test_scenario_library_shapes(self):
        assert sorted(SCENARIOS) == [
            "bitrot",
            "ebs-outage-2011",
            "flapping",
            "gray-failure",
            "latency-spike",
            "shard-loss",
            "transient-errors",
        ]
        for name, scenario in SCENARIOS.items():
            description = scenario.describe()
            assert description["name"] == name
            assert description["events"]
            json.dumps(description)  # JSON-able as documented


class TestDeterminism:
    @staticmethod
    def _run(seed):
        cluster = Cluster(seed=seed)
        node = cluster.add_node("n")
        svc = SimBlockVolume(
            name="vol",
            node=node,
            clock=cluster.clock,
            rng=cluster.rng,
            latency=FixedLatency(0.001),
            faults=cluster.faults,
        )
        cluster.chaos(SCENARIOS["transient-errors"], at=0.0)
        cluster.clock.run_until(61.0)  # enter the fault window
        outcomes = []
        for i in range(200):
            ctx = RequestContext(cluster.clock)
            try:
                svc.put(f"k{i}", b"v" * 64, ctx)
                outcomes.append("ok")
            except TransientServiceError:
                outcomes.append("err")
            cluster.clock.run_until(ctx.time)
        return outcomes, json.dumps(cluster.faults.report(), sort_keys=True)

    def test_same_seed_same_fault_sequence(self):
        assert self._run(7) == self._run(7)

    def test_different_seed_different_draws(self):
        outcomes_a, _ = self._run(7)
        outcomes_b, _ = self._run(8)
        assert outcomes_a != outcomes_b

    def test_faults_injected_counter_lands_in_obs(self):
        cluster = Cluster(seed=3)
        node = cluster.add_node("n")
        svc = SimMemcached(
            name="mc",
            node=node,
            clock=cluster.clock,
            rng=cluster.rng,
            latency=FixedLatency(0.001),
            faults=cluster.faults,
        )
        cluster.faults.inject("*", FaultProfile(name="e", error_rate=1.0))
        with pytest.raises(TransientServiceError):
            svc.put("k", b"v", RequestContext(cluster.clock))
        rendered = "\n".join(
            line for line in _render(cluster) if "faults_injected" in line
        )
        assert "tiera_faults_injected_total" in rendered
        assert 'kind="transient-error"' in rendered


def _render(cluster):
    from repro.obs.export import render_prometheus

    return render_prometheus(cluster.obs.metrics).splitlines()


class TestCrashPointInjector:
    def _injector(self, **kwargs):
        from repro.simcloud.faults import CrashPointInjector

        return CrashPointInjector(**kwargs)

    def test_unarmed_records_schedule_without_firing(self):
        injector = self._injector()
        for point in ("write.begin", "write.data", "write.begin"):
            injector.reach(point)
        assert injector.schedule == [
            (0, "write.begin"), (1, "write.data"), (2, "write.begin"),
        ]
        assert injector.hits == {"write.begin": 2, "write.data": 1}
        assert injector.fired is None

    def test_arm_index_fires_exactly_once_at_that_visit(self):
        from repro.simcloud.errors import ProcessCrash

        injector = self._injector().arm_index(1)
        injector.reach("a")
        with pytest.raises(ProcessCrash):
            injector.reach("b")
        assert injector.fired == ("b", 0)

    def test_arm_point_occurrence_counts_per_name(self):
        from repro.simcloud.errors import ProcessCrash

        injector = self._injector().arm("write.data", 1)
        injector.reach("write.data")      # occurrence 0: survives
        injector.reach("write.begin")
        with pytest.raises(ProcessCrash) as excinfo:
            injector.reach("write.data")  # occurrence 1: dies
        assert injector.fired == ("write.data", 1)
        assert "write.data" in str(excinfo.value)

    def test_on_hit_observes_every_visit_before_any_crash(self):
        from repro.simcloud.errors import ProcessCrash

        seen = []
        injector = self._injector(on_hit=lambda i, p: seen.append((i, p)))
        injector.arm_index(1)
        injector.reach("a")
        with pytest.raises(ProcessCrash):
            injector.reach("b")
        assert seen == [(0, "a"), (1, "b")]

    def test_process_crash_is_not_a_catchable_service_error(self):
        from repro.simcloud.errors import ProcessCrash, SimCloudError

        # Deliberately a BaseException: no `except Exception` on the
        # data path may absorb a simulated process death.
        assert not issubclass(ProcessCrash, Exception)
        assert not issubclass(ProcessCrash, SimCloudError)

    def test_crash_point_names_are_registered(self):
        from repro.simcloud.faults import CRASH_POINTS

        assert "write.journaled" in CRASH_POINTS
        assert "delete.commit" in CRASH_POINTS
        assert len(CRASH_POINTS) == len(set(CRASH_POINTS))
