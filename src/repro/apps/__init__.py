"""Applications the paper deploys on Tiera, rebuilt as simulators.

* :mod:`repro.apps.minidb` — a small page-based transactional database
  engine standing in for unmodified MySQL 5.7 (§4.1.1).
* :mod:`repro.apps.bookstore` — the TPC-W online bookstore (§4.1.2).
"""
