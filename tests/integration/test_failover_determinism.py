"""The failover harness's two contracts, end to end.

1. **Determinism** — one seed, two runs, byte-identical reports: op
   envelopes, detector transitions, hint-replay and anti-entropy logs,
   and the final cluster state digest all derive from the seeded RNGs
   and the virtual clock (this is exactly what the CI
   ``cluster-resilience`` job diffs).
2. **Self-healing** — killing 1 of 4 replicated shards mid-workload
   keeps availability at or above 99.9 % with zero acked-write loss,
   and after recovery the hints drain, anti-entropy converges to zero
   divergent groups, and cluster fsck comes back clean.
"""

import json

from repro.bench.failover import run_failover, run_migration_crash

#: Short but meaningful window: outage at t=30 for 45s plus a flapping
#: recovery, inside 120 driven seconds.
KWARGS = dict(
    records=16, duration=120.0, clients=2,
    outage_at=30.0, outage=45.0, flap_duration=20.0,
)


class TestSameSeedSameBytes:
    def test_failover_run_is_byte_reproducible(self):
        a = run_failover(seed=7, **KWARGS)
        b = run_failover(seed=7, **KWARGS)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        # The envelopes and repair logs specifically — the op-level
        # record of who failed, who was hinted, and who got repaired.
        assert a["envelopes"] == b["envelopes"]
        assert a["detector_transitions"] == b["detector_transitions"]
        assert a["replay_runs"] == b["replay_runs"]
        assert a["state_digest"] == b["state_digest"]
        # The run was not trivially empty: the victim actually died and
        # hints were actually parked.
        transitions = [
            (t["shard"], t["to"]) for t in a["detector_transitions"]
        ]
        assert (a["victim"], "down") in transitions
        assert a["hints"]["recorded"] > 0

    def test_different_seed_different_run(self):
        a = run_failover(seed=7, **KWARGS)
        b = run_failover(seed=8, **KWARGS)
        assert a["envelopes"]["digest"] != b["envelopes"]["digest"]


class TestSelfHealingInvariants:
    def test_shard_loss_availability_and_zero_acked_loss(self):
        report = run_failover(seed=7, **KWARGS)
        assert report["availability"]["overall"] >= 0.999
        assert report["acked_write_loss"] == 0
        assert report["hints"]["pending"] == 0
        assert report["anti_entropy"]["final_divergent"] == 0
        assert report["fsck"]["clean"]

    def test_migration_crash_sweep_recovers_clean(self):
        report = run_migration_crash(seed=7, records=8)
        assert report["clean"]
        assert all(entry["crashed"] for entry in report["swept"])
        assert all(entry["fsck_clean"] for entry in report["swept"])
        assert all(entry["keys_readable"] for entry in report["swept"])
