"""Condition expressions over objects, tiers, and actions.

The paper's specifications guard responses with expressions like
``object.location == tier1 && object.dirty == true`` (Figure 3) or
``tier1.filled == 75%`` (Figure 6).  This module is the evaluated AST
for those expressions.  The same AST backs three uses:

* **threshold events** — edge-triggered conditions over tier attributes,
* **selector predicates** — per-object filters in ``what:`` clauses,
* **if-statements** inside response blocks (Figure 5's LRU/MRU).

Evaluation happens against an :class:`EvalScope` naming the instance,
the in-flight action (if any), and the object currently under
consideration (for per-object predicates).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.core.actions import Action
from repro.core.errors import PolicyError, UnknownTierError
from repro.core.objects import ObjectMeta


@dataclass
class EvalScope:
    """Name-resolution scope for one condition evaluation."""

    instance: Any  # TieraInstance (typed loosely to avoid an import cycle)
    action: Optional[Action] = None
    obj: Optional[ObjectMeta] = None

    @property
    def now(self) -> float:
        return self.instance.clock.now()


class Condition(ABC):
    """A boolean- or value-producing expression node."""

    @abstractmethod
    def evaluate(self, scope: EvalScope) -> Any:
        """Produce this node's value in ``scope``."""

    def truthy(self, scope: EvalScope) -> bool:
        return bool(self.evaluate(scope))


@dataclass
class Literal(Condition):
    """A constant: number, string, bool, or a percentage (as a fraction)."""

    value: Any

    def evaluate(self, scope: EvalScope) -> Any:
        return self.value


# Attributes resolvable on an ObjectMeta via AttrRef.
_OBJECT_ATTRS = frozenset(
    {
        "location",
        "dirty",
        "size",
        "tags",
        "access_frequency",
        "last_access",
        "last_modified",
        "access_count",
        "version",
        "checksum",
        "compressed",
        "encrypted",
    }
)

_TIER_ATTRS = frozenset(
    {"filled", "used", "capacity", "oldest", "newest", "available", "name"}
)

# Attributes resolvable on an SLO objective via ``slo.<name>.<attr>``.
_SLO_ATTRS = frozenset(
    {
        "alerting",
        "burning",  # alias for alerting, reads well in specs
        "compliant",
        "burn_rate",
        "burn_rate_short",
        "current",
        "breaches",
    }
)

# Per-tier attributes resolvable via ``heat.<tier>.<attr>``.
_HEAT_TIER_ATTRS = frozenset(
    {
        "reads",
        "writes",
        "accesses",
        "read_fraction",
        "write_fraction",
        "used",
        "capacity",
        "utilization",
    }
)

# Workload-level attributes resolvable via ``heat.<attr>``.
_HEAT_ATTRS = frozenset(
    {
        "accesses",
        "reads",
        "writes",
        "read_fraction",
        "tracked",
        "hot_count",
        "skew",
        "churn",
    }
)


@dataclass
class AttrRef(Condition):
    """A dotted attribute path: ``object.dirty``, ``tier1.filled``, …

    Resolution rules (in order):

    * ``insert.object[.attr]`` / ``insert.into`` — the in-flight action,
    * ``object.attr`` — the object under consideration,
    * ``<tiername>[.attr]`` — a tier of the instance,
    * ``time`` — current clock time,
    * ``slo.<name>[.attr]`` — live SLO state (``burning``, ``compliant``,
      ``burn_rate``, …); bare ``slo.<name>`` is the alerting flag, so
      ``event(slo.get_latency.burning) : response { ... }`` lets policy
      react to error-budget burn,
    * ``heat.<attr>`` / ``heat.<tier>.<attr>`` — live workload heat
      (``skew``, ``churn``, ``hot_count``, per-tier ``read_fraction``,
      ``utilization``, …) from the heat tracker, so policy can react to
      measured access patterns (``event(heat.tier1.utilization > 90%)``).
    """

    path: Tuple[str, ...]

    def evaluate(self, scope: EvalScope) -> Any:
        head = self.path[0]
        if head == "insert":
            return self._resolve_action(scope)
        if head == "object":
            return self._resolve_object(scope.obj, self.path[1:], scope)
        if head == "time":
            return scope.now
        if head == "slo":
            return self._resolve_slo(scope, self.path[1:])
        if head == "heat":
            return self._resolve_heat(scope, self.path[1:])
        if scope.instance is not None and scope.instance.tiers.has(head):
            return self._resolve_tier(scope, head, self.path[1:])
        raise PolicyError(f"cannot resolve attribute path {'.'.join(self.path)!r}")

    def _resolve_action(self, scope: EvalScope) -> Any:
        if scope.action is None:
            raise PolicyError(
                f"{'.'.join(self.path)!r} referenced outside an action context"
            )
        rest = self.path[1:]
        if not rest:
            raise PolicyError("bare 'insert' is not a value")
        if rest[0] == "into":
            return scope.action.tier
        if rest[0] == "object":
            return self._resolve_object(scope.action.meta, rest[1:], scope)
        raise PolicyError(f"unknown action attribute {rest[0]!r}")

    def _resolve_object(
        self,
        meta: Optional[ObjectMeta],
        rest: Sequence[str],
        scope: EvalScope,
    ) -> Any:
        if meta is None:
            raise PolicyError(
                f"{'.'.join(self.path)!r}: no object in evaluation scope"
            )
        if not rest:
            return meta
        attr = rest[0]
        if attr not in _OBJECT_ATTRS:
            raise PolicyError(f"unknown object attribute {attr!r}")
        if attr == "location":
            return meta.locations
        if attr == "access_frequency":
            return meta.access_frequency(scope.now)
        return getattr(meta, attr)

    def _resolve_slo(self, scope: EvalScope, rest: Sequence[str]) -> Any:
        if not rest:
            raise PolicyError("bare 'slo' is not a value; use slo.<name>")
        engine = scope.instance.obs.slo
        name = rest[0]
        if not engine.has(name):
            raise PolicyError(f"no SLO named {name!r} is installed")
        state = engine.state(name, scope.now)
        if len(rest) == 1:
            return state["alerting"]
        attr = rest[1]
        if attr not in _SLO_ATTRS:
            raise PolicyError(f"unknown SLO attribute {attr!r}")
        if attr == "burning":
            attr = "alerting"
        return state[attr]

    def _resolve_heat(self, scope: EvalScope, rest: Sequence[str]) -> Any:
        if not rest:
            raise PolicyError("bare 'heat' is not a value; use heat.<attr>")
        tracker = getattr(scope.instance.obs, "heat", None)
        if tracker is None or not tracker.enabled:
            raise PolicyError(
                "heat tracking is not enabled on this instance"
            )
        head = rest[0]
        if len(rest) == 1:
            if head not in _HEAT_ATTRS:
                raise PolicyError(f"unknown heat attribute {head!r}")
            return tracker.global_stats()[head]
        if not scope.instance.tiers.has(head):
            raise PolicyError(
                f"heat.{head}: {head!r} is neither a heat attribute nor a tier"
            )
        attr = rest[1]
        if attr not in _HEAT_TIER_ATTRS:
            raise PolicyError(f"unknown heat tier attribute {attr!r}")
        return tracker.tier_stats(head)[attr]

    def _resolve_tier(self, scope: EvalScope, tier_name: str, rest) -> Any:
        tier = scope.instance.tiers.get(tier_name)
        if not rest:
            return tier
        attr = rest[0]
        if attr not in _TIER_ATTRS:
            raise PolicyError(f"unknown tier attribute {attr!r}")
        return getattr(tier, attr)

    def __str__(self) -> str:
        return ".".join(self.path)


_OPS = {
    "==": lambda a, b: _loose_eq(a, b),
    "!=": lambda a, b: not _loose_eq(a, b),
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _loose_eq(a: Any, b: Any) -> bool:
    """Equality with the paper's container conventions.

    ``object.location == tier1`` means *membership* (the object's
    location is a set of tiers), and ``object.tags == "tmp"`` likewise.
    """
    if isinstance(a, (set, frozenset)) and not isinstance(b, (set, frozenset)):
        return b in a
    if isinstance(b, (set, frozenset)) and not isinstance(a, (set, frozenset)):
        return a in b
    return a == b


@dataclass
class Comparison(Condition):
    """``lhs <op> rhs`` with the operators the spec language allows."""

    op: str
    lhs: Condition
    rhs: Condition

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PolicyError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, scope: EvalScope) -> bool:
        left = self.lhs.evaluate(scope)
        right = self.rhs.evaluate(scope)
        # Tier operands compare by name ("insert.into == tier1").
        left = getattr(left, "name", left) if _is_tier(left) else left
        right = getattr(right, "name", right) if _is_tier(right) else right
        return _OPS[self.op](left, right)


def _is_tier(value: Any) -> bool:
    return hasattr(value, "filled") and hasattr(value, "service")


@dataclass
class And(Condition):
    parts: Tuple[Condition, ...]

    def __init__(self, *parts: Condition):
        object.__setattr__(self, "parts", tuple(parts))

    def evaluate(self, scope: EvalScope) -> bool:
        return all(part.truthy(scope) for part in self.parts)


@dataclass
class Or(Condition):
    parts: Tuple[Condition, ...]

    def __init__(self, *parts: Condition):
        object.__setattr__(self, "parts", tuple(parts))

    def evaluate(self, scope: EvalScope) -> bool:
        return any(part.truthy(scope) for part in self.parts)


@dataclass
class Not(Condition):
    inner: Condition

    def evaluate(self, scope: EvalScope) -> bool:
        return not self.inner.truthy(scope)


@dataclass
class TierFull(Condition):
    """Truthiness of a bare ``tierX.filled`` in an if-statement (Figure 5).

    "Full" means: the pending insert (if any) would not fit; with no
    pending insert, at or above capacity.
    """

    tier_name: str

    def evaluate(self, scope: EvalScope) -> bool:
        if not scope.instance.tiers.has(self.tier_name):
            raise UnknownTierError(self.tier_name)
        tier = scope.instance.tiers.get(self.tier_name)
        pending = 0
        if scope.action is not None and scope.action.data is not None:
            pending = scope.action.size - _resident_size(tier, scope.action.key)
        if pending > 0:
            return not tier.can_fit(pending)
        return tier.filled >= 1.0


def _resident_size(tier, key: str) -> int:
    if tier.contains(key):
        return tier.service.size_of(key)
    return 0


@dataclass
class HeatHot(Condition):
    """True while ``key`` is in the heat tracker's current hot set.

    Backs the spec form ``event(heat.hot(key))``: edge-triggered on the
    key *entering* the hot set, so a promote-on-hot response fires once
    per heating-up rather than on every access.
    """

    key: str

    def evaluate(self, scope: EvalScope) -> bool:
        tracker = getattr(scope.instance.obs, "heat", None)
        if tracker is None or not tracker.enabled:
            raise PolicyError(
                "heat tracking is not enabled on this instance"
            )
        return tracker.is_hot(self.key)


@dataclass
class TierDirtyBytes(Condition):
    """Total bytes of dirty objects resident in a tier.

    The Figure 14 experiment replicates "after [a] certain amount of new
    data has been written into the first volume" (50 MB); that amount is
    exactly the dirty bytes accumulated since the last copy, which the
    copy response resets by clearing dirty flags.
    """

    tier_name: str

    def evaluate(self, scope: EvalScope) -> int:
        return sum(
            meta.size
            for meta in scope.instance.iter_meta()
            if meta.dirty and self.tier_name in meta.locations
        )
