"""Wire protocol: 4-byte big-endian length prefix + UTF-8 JSON body.

Requests look like ``{"id": 7, "method": "put", "params": {...}}``;
responses are ``{"id": 7, "result": ...}`` or ``{"id": 7, "error":
{"code": "...", "type": "...", "message": "..."}}``.  Object payloads
are base64 strings (JSON cannot carry raw bytes).

``code`` is the stable error taxonomy from :mod:`repro.core.errors` —
clients branch on it, never on ``type`` (an exception class name kept
for messages and backwards compatibility) or message text.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Any, Dict, Optional

MAX_FRAME = 64 * 1024 * 1024  # 64 MiB: generous bound against garbage
_LEN = struct.Struct(">I")


class RpcError(Exception):
    """An error returned by the remote server.

    ``code`` is the stable error code (``NO_SUCH_OBJECT``,
    ``BACKPRESSURE``, …); ``error_type`` is the server-side exception
    class name, kept for human-readable messages.
    """

    def __init__(self, error_type: str, message: str, code: str = "INTERNAL"):
        self.error_type = error_type
        self.message = message
        self.code = code or "INTERNAL"
        super().__init__(f"{error_type}: {message}")


class ConnectionClosed(Exception):
    """The peer closed the connection mid-stream."""


def encode_bytes(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def decode_bytes(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


def write_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ValueError("frame too large")
    sock.sendall(_LEN.pack(len(body)) + body)


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed()
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one message; ``None`` on orderly EOF at a frame boundary."""
    try:
        header = _read_exact(sock, _LEN.size)
    except ConnectionClosed:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds limit")
    body = _read_exact(sock, length)
    return json.loads(body.decode("utf-8"))
