"""The Tiera instance-specification language.

The paper configures instances through specification files (Figures 3-6)
but hand-codes the policies into the prototype, leaving "automated
compilation and optimization of specification files" to future work.
This package implements that compiler: :func:`compile_spec` turns the
paper's exact syntax into a running
:class:`~repro.core.instance.TieraInstance`.

Example (Figure 3, verbatim modulo whitespace)::

    Tiera LowLatencyInstance(time t) {
        tier1: { name: Memcached, size: 5G };
        tier2: { name: EBS, size: 5G };
        event(insert.into) : response {
            insert.object.dirty = true;
            store(what: insert.object, to: tier1);
        }
        event(time=t) : response {
            copy(what: object.location == tier1 &&
                       object.dirty == true,
                 to: tier2);
        }
    }

``%`` starts a comment (unless it immediately follows a number, where it
is the percent unit, as in ``75%``).
"""

from repro.spec.lexer import Lexer, SpecSyntaxError, Token
from repro.spec.parser import parse
from repro.spec.compiler import compile_spec, compile_source
from repro.spec.printer import print_spec

__all__ = [
    "Lexer",
    "SpecSyntaxError",
    "Token",
    "compile_source",
    "compile_spec",
    "parse",
    "print_spec",
]
