"""The failure monitor drives the Figure 17 repair."""

import pytest

from repro.core import templates
from repro.core.server import TieraServer
from repro.monitor import StorageMonitor


@pytest.fixture
def stack(registry, cluster):
    instance = templates.write_through_instance(registry, mem="4M", ebs="4M")
    server = TieraServer(instance)
    return instance, server, cluster


class TestMonitor:
    def test_healthy_probes_do_not_repair(self, stack):
        instance, server, cluster = stack
        fired = []
        monitor = StorageMonitor(server, on_failure=lambda: fired.append(1)).start()
        cluster.clock.advance(600)
        assert monitor.probes == 5
        assert fired == []

    def test_failure_detected_within_one_probe(self, stack):
        instance, server, cluster = stack
        fired = []
        monitor = StorageMonitor(server, on_failure=lambda: fired.append(1)).start()
        cluster.clock.advance(121)  # one healthy probe
        instance.tiers.get("tier2").service.fail()
        cluster.clock.advance(120)  # next probe hits the failure
        assert fired == [1]
        assert monitor.failures_seen == 1

    def test_repair_fires_once(self, stack):
        instance, server, cluster = stack
        fired = []
        StorageMonitor(server, on_failure=lambda: fired.append(1)).start()
        instance.tiers.get("tier2").service.fail()
        cluster.clock.advance(600)
        assert fired == [1]

    def test_stop_cancels_probing(self, stack):
        instance, server, cluster = stack
        monitor = StorageMonitor(server, on_failure=lambda: None).start()
        cluster.clock.advance(121)
        monitor.stop()
        cluster.clock.advance(600)
        assert monitor.probes == 1

    def test_canary_objects_do_not_accumulate(self, stack):
        """The leak fix: probing leaves no objects behind."""
        instance, server, cluster = stack
        StorageMonitor(server, on_failure=lambda: None).start()
        cluster.clock.advance(600)  # 5 probes
        assert instance.object_count() == 0
        assert not server.contains("__monitor_canary__")

    def test_probe_outcomes_recorded(self, stack):
        instance, server, cluster = stack
        monitor = StorageMonitor(server, on_failure=lambda: None).start()
        cluster.clock.advance(250)  # two healthy probes
        instance.tiers.get("tier2").service.fail()
        cluster.clock.advance(120)  # one failed probe

        probes = instance.obs.metrics.get("tiera_monitor_probes_total")
        assert probes.value(outcome="healthy") == 2
        assert probes.value(outcome="failed") == 1
        records = instance.obs.audit.records(category="probe")
        assert [r.detail["outcome"] for r in records] == [
            "healthy", "healthy", "failed"
        ]
        assert records[-1].error is not None
        assert monitor.failures_seen == 1

    def test_full_figure17_repair(self, stack, registry):
        """Failure → detection → reconfiguration → service restored."""
        instance, server, cluster = stack

        def repair():
            tiers, rules = templates.ephemeral_s3_reconfiguration(registry)
            instance.reconfigure(
                add_tiers=tiers,
                remove_tiers=["tier1", "tier2"],
                replace_policy=rules,
            )

        StorageMonitor(server, on_failure=repair).start()
        server.put("pre-failure", b"v")
        instance.tiers.get("tier2").service.fail()
        cluster.clock.advance(360)  # detection + repair happen in here
        ctx = server.put("post-repair", b"v")
        assert instance.meta("post-repair").locations == {"tier3"}
        assert ctx.elapsed < 1.0  # writes are fast again
