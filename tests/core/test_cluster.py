"""Replicated self-healing cluster: quorums, hints, repair, migration."""

import pytest

from repro.core.cluster import ClusterConfig, Hint, HintQueue
from repro.core.server import TieraServer
from repro.core.sharding import ShardedTieraServer
from repro.kvstore.store import MemoryStore
from repro.simcloud.errors import ProcessCrash
from repro.simcloud.faults import CrashPointInjector, FaultProfile
from tests.core.conftest import build_instance

HARD_DOWN = FaultProfile(name="hard-down", flap_period=1e9, flap_duty=0.0)

CONFIG = ClusterConfig(
    replication_factor=3,
    write_quorum=2,
    heartbeat_interval=1000.0,   # probes are driven manually in tests
    anti_entropy_interval=0.0,   # sweeps are called explicitly
)


def make_shard(registry, name):
    instance = build_instance(
        registry,
        [(f"{name}-mem", "Memcached", 10 ** 7),
         (f"{name}-ebs", "EBS", 10 ** 8)],
        name=name,
    )
    return TieraServer(instance)


@pytest.fixture
def rt(registry):
    shards = {name: make_shard(registry, name) for name in ("a", "b", "c", "d")}
    router = ShardedTieraServer(shards, replication=CONFIG)
    yield router
    router.cluster.stop()


def take_down(cluster, router, shard):
    """Hard-down every tier service of ``shard``; returns the handles."""
    return [
        cluster.faults.inject(f"node:{tier.service.node.name}", HARD_DOWN)
        for tier in router.shards[shard].instance.tiers
    ]


def mark_down(cluster, router, shard):
    handles = take_down(cluster, router, shard)
    detector = router.cluster.detector
    for _ in range(CONFIG.down_after_misses):
        detector.tick()
    assert detector.is_down(shard)
    return handles


def bring_up(cluster, router, handles):
    for handle in handles:
        cluster.faults.clear(handle)
    router.cluster.detector.tick()
    # Fire the zero-delay heal scheduled by the up-transition.
    cluster.clock.run_until(cluster.clock.now() + 0.01)


class TestReplication:
    def test_write_lands_on_r_distinct_owners(self, rt):
        result = rt.put_object("k1", b"v1")
        assert result.ok
        owners = rt.cluster.owners("k1")
        assert len(owners) == 3
        assert sorted(result.tier.split(",")) == sorted(owners)
        for name, server in rt.shards.items():
            assert server.contains("k1") == (name in owners)

    def test_read_prefers_primary_then_fails_over(self, cluster, rt):
        rt.put_object("k2", b"payload")
        owners = rt.cluster.owners("k2")
        handles = mark_down(cluster, rt, owners[0])
        result = rt.get_object("k2")
        assert result.ok and result.value == b"payload"
        counter = rt.obs.metrics.counter(
            "tiera_cluster_failover_reads_total", ""
        )
        assert counter.value(shard=owners[0]) >= 1
        bring_up(cluster, rt, handles)

    def test_quorum_succeeds_with_one_owner_down(self, cluster, rt):
        owners = rt.cluster.owners("k3")
        handles = mark_down(cluster, rt, owners[1])
        result = rt.put_object("k3", b"v3")
        assert result.ok
        acked = sorted(result.tier.split(","))
        assert owners[1] not in acked and len(acked) == 2
        assert len(rt.cluster.hints) == 1
        hint = next(iter(rt.cluster.hints))
        assert hint.target == owners[1] and hint.key == "k3"
        assert hint.holder not in owners  # parked on the non-owner
        bring_up(cluster, rt, handles)

    def test_no_quorum_is_a_coded_envelope(self, cluster, rt):
        owners = rt.cluster.owners("k4")
        h1 = mark_down(cluster, rt, owners[0])
        h2 = mark_down(cluster, rt, owners[1])
        result = rt.put_object("k4", b"v4")
        assert not result.ok
        assert result.error == "NO_QUORUM"
        with pytest.raises(Exception) as excinfo:
            result.raise_for_error()
        assert "acked by 1/2" in str(excinfo.value)
        bring_up(cluster, rt, h1)
        bring_up(cluster, rt, h2)

    def test_checksum_vote_skips_stale_replica(self, rt):
        rt.put_object("k5", b"fresh-1")
        owners = rt.cluster.owners("k5")
        # Two owners take a newer write directly; the third goes stale
        # with a minority checksum.
        for shard in owners[1:]:
            rt.shards[shard].put_object("k5", b"fresh-2")
        result = rt.get_object("k5")
        assert result.ok and result.value == b"fresh-2"
        # The scheduled repair converges the stale primary.
        rt.clock.run_until(rt.clock.now() + 0.01)
        assert rt.shards[owners[0]].get_object("k5").value == b"fresh-2"

    def test_read_repair_restores_missing_replica(self, rt):
        rt.put_object("k6", b"v6")
        owners = rt.cluster.owners("k6")
        rt.shards[owners[0]].delete_object("k6")
        result = rt.get_object("k6")
        assert result.ok and result.value == b"v6"
        rt.clock.run_until(rt.clock.now() + 0.01)
        assert rt.shards[owners[0]].contains("k6")
        assert rt.cluster.fsck()["clean"]

    def test_batch_replicates_each_item(self, rt):
        from repro.core.api import BatchOp

        batch = rt.execute_batch(
            [BatchOp.put(f"b{i}", f"v{i}".encode()) for i in range(6)]
            + [BatchOp.get("b0")],
            parallelism=3,
        )
        assert all(r.ok for r in batch.results)
        assert batch.results[-1].value == b"v0"
        for i in range(6):
            assert len(rt.cluster.owners(f"b{i}")) == 3

    def test_legacy_shims_route_through_cluster(self, rt):
        rt.put("legacy", b"bytes")
        assert rt.get("legacy") == b"bytes"
        assert rt.contains("legacy")
        assert rt.stat("legacy").checksum
        rt.delete("legacy")
        assert not rt.contains("legacy")


class TestSelfHealing:
    def test_hints_replay_when_the_shard_returns(self, cluster, rt):
        owners = rt.cluster.owners("heal-1")
        handles = mark_down(cluster, rt, owners[2])
        rt.put_object("heal-1", b"healed")
        assert rt.cluster.hints.pending(owners[2]) == 1
        holder = next(iter(rt.cluster.hints)).holder
        bring_up(cluster, rt, handles)   # schedules replay + anti-entropy
        assert len(rt.cluster.hints) == 0
        assert rt.shards[owners[2]].get_object("heal-1").value == b"healed"
        # The parked stray on the non-owner is gone again.
        assert not rt.shards[holder].contains("heal-1")
        assert rt.cluster.fsck()["clean"]

    def test_delete_hint_needs_no_bytes(self, cluster, rt):
        rt.put_object("heal-2", b"doomed")
        owners = rt.cluster.owners("heal-2")
        handles = mark_down(cluster, rt, owners[0])
        assert rt.delete_object("heal-2").ok
        hint = next(iter(rt.cluster.hints))
        assert hint.op == "delete" and hint.checksum == ""
        bring_up(cluster, rt, handles)
        assert len(rt.cluster.hints) == 0
        assert not rt.shards[owners[0]].contains("heal-2")

    def test_replay_requeues_while_target_still_down(self, cluster, rt):
        owners = rt.cluster.owners("heal-3")
        handles = mark_down(cluster, rt, owners[0])
        rt.put_object("heal-3", b"parked")
        record = rt.cluster.replay_hints()
        assert record["requeued"] == 1 and record["replayed"] == 0
        assert len(rt.cluster.hints) == 1
        bring_up(cluster, rt, handles)
        assert len(rt.cluster.hints) == 0

    def test_anti_entropy_converges_divergent_group(self, rt):
        rt.put_object("ae-1", b"original")
        owners = rt.cluster.owners("ae-1")
        rt.shards[owners[1]].put_object("ae-1", b"newer-write")
        first = rt.cluster.anti_entropy()
        assert first["divergent"] == 1 and first["repairs"] >= 1
        second = rt.cluster.anti_entropy()
        assert second["divergent"] == 0
        for shard in owners:
            assert rt.shards[shard].get_object("ae-1").value == b"newer-write"

    def test_detector_trips_on_op_failures_alone(self, cluster, rt):
        owners = rt.cluster.owners("fd-1")
        victim = owners[0]
        handles = take_down(cluster, rt, victim)
        # No probe runs; repeated data-path timeouts must trip it.
        for _ in range(CONFIG.op_failure_threshold):
            rt.put_object("fd-1", b"x")
        assert rt.cluster.detector.is_down(victim)
        transitions = [
            (t["shard"], t["to"]) for t in rt.cluster.detector.transitions
        ]
        assert (victim, "suspect") in transitions
        assert (victim, "down") in transitions
        bring_up(cluster, rt, handles)

    def test_health_degrades_while_a_shard_is_down(self, cluster, rt):
        assert rt.health()["status"] == "ok"
        handles = mark_down(cluster, rt, "b")
        health = rt.health()
        assert health["status"] == "degraded"
        assert health["cluster"]["shards"]["b"] == "down"
        bring_up(cluster, rt, handles)
        assert rt.health()["status"] == "ok"


class TestBackgroundTracing:
    """Maintenance paths open their own background trace roots, so
    hint replay, anti-entropy, and read-repair show up in trace trees
    alongside client requests instead of running invisibly."""

    def _roots(self, rt, name):
        return [s for s in rt.obs.tracer.recent() if s.name.startswith(name)]

    def test_anti_entropy_sweep_opens_background_root(self, rt):
        rt.obs.tracer.enabled = True
        rt.put_object("ae-t", b"original")
        owners = rt.cluster.owners("ae-t")
        rt.shards[owners[1]].put_object("ae-t", b"newer")
        rt.cluster.anti_entropy()
        [root] = self._roots(rt, "anti-entropy")
        assert root.kind == "background" and not root.foreground
        assert root.attrs["divergent"] == 1
        assert root.attrs["repairs"] >= 1
        assert root.children  # repair tier-ops nest under the sweep

    def test_hint_replay_opens_background_root(self, cluster, rt):
        rt.obs.tracer.enabled = True
        owners = rt.cluster.owners("hint-t")
        handles = mark_down(cluster, rt, owners[0])
        rt.put_object("hint-t", b"parked")
        rt.cluster.replay_hints()
        roots = self._roots(rt, "hint-replay")
        assert roots and roots[-1].attrs["requeued"] == 1
        bring_up(cluster, rt, handles)
        roots = self._roots(rt, "hint-replay")
        assert roots[-1].attrs["replayed"] == 1
        assert all(r.kind == "background" for r in roots)

    def test_scheduled_read_repair_opens_background_root(self, rt):
        rt.obs.tracer.enabled = True
        rt.put_object("rr-t", b"v")
        owners = rt.cluster.owners("rr-t")
        rt.shards[owners[0]].delete_object("rr-t")
        rt.get_object("rr-t")
        rt.clock.run_until(rt.clock.now() + 0.01)
        [root] = self._roots(rt, "read-repair rr-t")
        assert root.kind == "background" and not root.foreground
        assert root.attrs["key"] == "rr-t"
        assert rt.shards[owners[0]].contains("rr-t")

    def test_untraced_background_paths_stay_silent(self, rt):
        rt.put_object("quiet", b"v")
        rt.cluster.anti_entropy()
        assert rt.obs.tracer.recent() == []


class TestHintQueue:
    def test_newer_write_supersedes_same_slot(self):
        queue = HintQueue()
        queue.add(Hint(key="k", target="t", holder="h1", op="put",
                       checksum="c1"))
        queue.add(Hint(key="k", target="t", holder="h2", op="put",
                       checksum="c2"))
        assert len(queue) == 1
        assert queue.recorded == 2
        assert next(iter(queue)).checksum == "c2"

    def test_take_is_fifo_and_target_scoped(self):
        queue = HintQueue()
        queue.add(Hint(key="k1", target="t1", holder="h", op="put"))
        queue.add(Hint(key="k2", target="t2", holder="h", op="put"))
        queue.add(Hint(key="k3", target="t1", holder="h", op="put"))
        taken = queue.take("t1")
        assert [h.key for h in taken] == ["k1", "k3"]
        assert queue.pending() == 1 and queue.targets() == ["t2"]


class TestMigration:
    def _build(self, registry, journal_store, names=("a", "b", "c")):
        shards = {name: make_shard(registry, name) for name in names}
        router = ShardedTieraServer(
            shards, replication=CONFIG, journal_store=journal_store
        )
        for i in range(24):
            router.put_object(f"mig{i:03d}", f"v{i}".encode())
        return router

    def test_add_shard_rebalances_and_fscks_clean(self, registry):
        router = self._build(registry, MemoryStore())
        moved = router.add_shard("e", make_shard(registry, "e"))
        assert moved > 0
        assert router.cluster.fsck()["clean"]
        assert len(router.cluster.journal) == 0
        for i in range(24):
            assert router.get_object(f"mig{i:03d}").ok
        router.cluster.stop()

    def test_remove_shard_rebalances_and_fscks_clean(self, registry):
        # Four shards at R=3, so the departing shard's keys genuinely
        # need a new third owner (at R == N a removal only drops copies).
        router = self._build(
            registry, MemoryStore(), names=("a", "b", "c", "d")
        )
        departing = router.shards["b"]
        moved = router.remove_shard("b")
        assert moved > 0
        assert "b" not in router.shards
        assert not any(k.startswith("mig") for k in departing.keys())
        assert router.cluster.fsck()["clean"]
        for i in range(24):
            assert router.get_object(f"mig{i:03d}").ok
        router.cluster.stop()

    @pytest.mark.parametrize("point", [
        "cluster.move.intent", "cluster.move.copied", "cluster.migrate.done",
    ])
    def test_crash_mid_add_recovers_from_the_journal(self, registry, point):
        store = MemoryStore()
        router = self._build(registry, store)
        joiner = make_shard(registry, "e")
        router.cluster.crash_points = CrashPointInjector().arm(point, 0)
        with pytest.raises(ProcessCrash):
            router.add_shard("e", joiner)
        router.cluster.stop()
        router.clock.cancel_all()

        # Reopen the control layer over the same shards + journal store,
        # like a restarted migrator process.
        shards_after = dict(router.shards)
        shards_after["e"] = joiner
        reopened = ShardedTieraServer(
            shards_after, replication=CONFIG, journal_store=store
        )
        reopened.cluster.recover()
        report = reopened.cluster.fsck()
        assert report["clean"], report["findings"]
        assert len(reopened.cluster.journal) == 0
        for i in range(24):
            assert reopened.get_object(f"mig{i:03d}").ok
        reopened.cluster.stop()

    def test_fsck_repair_heals_planted_faults(self, registry):
        router = self._build(
            registry, MemoryStore(), names=("a", "b", "c", "d")
        )
        key = "mig000"
        owners = router.cluster.owners(key)
        non_owner = next(
            s for s in sorted(router.shards) if s not in owners
        )
        router.shards[non_owner].put_object(key, b"stray")   # orphan copy
        router.shards[owners[0]].delete_object(key)          # under-replicated
        report = router.cluster.fsck()
        kinds = {f["kind"] for f in report["findings"]}
        assert {"orphan-copy", "under-replicated"} <= kinds
        repaired = router.cluster.fsck(repair=True)
        assert all("repair" in f for f in repaired["findings"])
        assert router.cluster.fsck()["clean"]
        assert not router.shards[non_owner].contains(key)
        assert router.shards[owners[0]].contains(key)
        router.cluster.stop()

    def test_summary_shape(self, registry):
        router = self._build(registry, MemoryStore())
        summary = router.cluster.summary()
        assert summary["replicas"] == 3
        assert set(summary["shards"]) == {"a", "b", "c"}
        assert summary["hints"]["pending"] == 0
        assert summary["journal_pending"] == 0
        router.cluster.stop()
