"""Named tier factories.

Instance specifications name tiers by product — ``tier1: { name:
Memcached, size: 5G }`` — and "it is assumed that the specific tier
names are known to Tiera" (§2.3).  This registry is where those names
are known: it maps a product name to a factory that provisions the
simulated service on a cluster node and wraps it in a
:class:`~repro.tiers.base.Tier`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.simcloud.cluster import Cluster, Node
from repro.simcloud.pricing import CostMeter
from repro.simcloud.services import (
    SimBlockVolume,
    SimEphemeralDisk,
    SimMemcached,
    SimObjectStore,
)
from repro.tiers.base import Tier

TierFactory = Callable[..., Tier]

_SERVICE_CLASSES = {
    "memcached": SimMemcached,
    "ebs": SimBlockVolume,
    "s3": SimObjectStore,
    "ephemeralstorage": SimEphemeralDisk,
    "ephemeral": SimEphemeralDisk,
}


class TierRegistry:
    """Maps spec-file tier names to provisioning factories."""

    def __init__(self, cluster: Cluster, meter: Optional[CostMeter] = None):
        self.cluster = cluster
        self.meter = meter if meter is not None else CostMeter()
        self._factories: Dict[str, TierFactory] = {}
        self._counter = 0
        for product in ("Memcached", "EBS", "S3", "EphemeralStorage"):
            self.register(product, self._builtin_factory(product))

    def register(self, product: str, factory: TierFactory) -> None:
        self._factories[product.lower()] = factory

    def known(self, product: str) -> bool:
        return product.lower() in self._factories

    def create(
        self,
        product: str,
        tier_name: str,
        size: Optional[int],
        zone: str = "us-east-1a",
        server_node: Optional[Node] = None,
        **kwargs,
    ) -> Tier:
        """Provision a tier of the given product in ``zone``."""
        factory = self._factories.get(product.lower())
        if factory is None:
            raise KeyError(f"unknown tier product {product!r}")
        return factory(
            tier_name=tier_name,
            size=size,
            zone=zone,
            server_node=server_node,
            **kwargs,
        )

    def _builtin_factory(self, product: str) -> TierFactory:
        service_cls = _SERVICE_CLASSES[product.lower()]

        def build(
            tier_name: str,
            size: Optional[int],
            zone: str = "us-east-1a",
            server_node: Optional[Node] = None,
            colocated: bool = False,
            **kwargs,
        ) -> Tier:
            self._counter += 1
            node_name = f"{product.lower()}-node-{self._counter}"
            node = self.cluster.add_node(node_name, zone=zone)
            if service_cls is SimObjectStore:
                size = None  # S3 is not provisioned by size
            kwargs.setdefault("obs", self.cluster.obs)
            kwargs.setdefault("faults", self.cluster.faults)
            service = service_cls(
                name=f"{product.lower()}-{self._counter}",
                node=node,
                clock=self.cluster.clock,
                capacity=size,
                rng=self.cluster.rng,
                meter=self.meter,
                **kwargs,
            )
            return Tier(
                tier_name, service, server_node=server_node, colocated=colocated
            )

        return build


def default_registry(
    cluster: Optional[Cluster] = None, meter: Optional[CostMeter] = None
) -> TierRegistry:
    """Registry over a fresh single-zone cluster (convenience for tests)."""
    if cluster is None:
        cluster = Cluster()
    return TierRegistry(cluster, meter=meter)
