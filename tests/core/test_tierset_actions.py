"""TierSet ordering/mutation and Action descriptors."""

import pytest

from repro.core.actions import Action
from repro.core.errors import UnknownTierError
from repro.core.objects import ObjectMeta
from repro.core.tierset import TierSet


class TestTierSet:
    def test_declaration_order_preserved(self, registry):
        tiers = TierSet(
            [
                registry.create("Memcached", tier_name="fast", size=100),
                registry.create("EBS", tier_name="mid", size=100),
                registry.create("S3", tier_name="slow", size=None),
            ]
        )
        assert tiers.names() == ["fast", "mid", "slow"]
        assert tiers.first().name == "fast"
        assert [t.name for t in tiers.ordered()] == ["fast", "mid", "slow"]

    def test_duplicate_rejected(self, registry):
        tiers = TierSet([registry.create("S3", tier_name="a", size=None)])
        with pytest.raises(ValueError):
            tiers.add(registry.create("S3", tier_name="a", size=None))

    def test_remove_and_contains(self, registry):
        tiers = TierSet(
            [
                registry.create("Memcached", tier_name="a", size=1),
                registry.create("EBS", tier_name="b", size=1),
            ]
        )
        removed = tiers.remove("a")
        assert removed.name == "a"
        assert "a" not in tiers
        assert len(tiers) == 1

    def test_unknown_lookups(self, registry):
        tiers = TierSet([])
        with pytest.raises(UnknownTierError):
            tiers.get("nope")
        with pytest.raises(UnknownTierError):
            tiers.remove("nope")
        with pytest.raises(UnknownTierError):
            tiers.first()


class TestAction:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            Action(kind="mutate", key="k")

    def test_size_of_payload(self):
        action = Action(kind="insert", key="k", data=b"12345")
        assert action.size == 5
        assert Action(kind="get", key="k").size == 0

    def test_repr_mentions_target(self):
        action = Action(
            kind="insert", key="k", meta=ObjectMeta(key="k"), tier="tier1"
        )
        assert "into=tier1" in repr(action)

    def test_bookkeeping_defaults(self):
        action = Action(kind="insert", key="k", data=b"x")
        assert action.placed is False
        assert action.stored_in == set()
