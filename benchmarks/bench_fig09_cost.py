"""Figure 9: cost optimisation — MySQL on the MemcachedS3 instance.

Paper setup: the ``MemcachedS3`` Tiera instance (small co-located
Memcached LRU cache over S3) vs the standard EBS deployment, sysbench
with 10 % of the data requested 80 % of the time, 8 threads; plus the
MySQL Memory Engine baseline.  Throughput is plotted on a log scale and
the monthly storage cost alongside.

Paper result: the Tiera deployment costs a fraction of EBS, matches it
on read-only (cache absorbs the hot set), and sacrifices read-write
performance (every write goes to S3); the Memory Engine delivers
≈0.15 TPS.
"""

from __future__ import annotations

from repro.bench.deployments import (
    mysql_memory_engine,
    mysql_on_ebs,
    mysql_on_memcached_s3,
)
from repro.bench.report import format_table
from repro.bench.runner import run_closed_loop
from repro.workloads.sysbench import SysbenchOltp, load_table

ROWS = 50_000
HOT = 0.10
CLIENTS = 8
DURATION = 12.0
WARMUP = 3.0
MEMORY_ENGINE_DURATION = 120.0  # it needs a long window to commit at all


def _tps(deployment, read_only, duration=DURATION):
    load_table(deployment.db, ROWS, clock=deployment.clock)
    workload = SysbenchOltp(
        deployment.db, ROWS, hot_fraction=HOT, read_only=read_only
    )
    result = run_closed_loop(
        deployment.clock, clients=CLIENTS, duration=duration,
        op_fn=workload, warmup=WARMUP,
    )
    return result.throughput


def run_figure9():
    rows = []
    ebs_ro = mysql_on_ebs(os_cache="8M")
    rows.append(["MySQL On EBS", "R", round(_tps(ebs_ro, True), 2),
                 round(ebs_ro.monthly_cost(), 2)])
    ebs_rw = mysql_on_ebs(os_cache="8M")
    rows.append(["MySQL On EBS", "R/W", round(_tps(ebs_rw, False), 2),
                 round(ebs_rw.monthly_cost(), 2)])
    # The cache holds the hot set and part of the cold data, but not
    # the whole database ("wasn't large enough to store the entire
    # database").
    tiera_ro = mysql_on_memcached_s3(mem="16M")
    rows.append(["MySQL On Tiera (MemcachedS3)", "R",
                 round(_tps(tiera_ro, True), 2),
                 round(tiera_ro.monthly_cost() + 0.30, 2)])
    tiera_rw = mysql_on_memcached_s3(mem="16M")
    rows.append(["MySQL On Tiera (MemcachedS3)", "R/W",
                 round(_tps(tiera_rw, False), 2),
                 round(tiera_rw.monthly_cost() + 0.30, 2)])
    memory = mysql_memory_engine()
    rows.append([
        "MySQL Memory Engine", "R/W",
        round(_tps(memory, False, duration=MEMORY_ENGINE_DURATION), 2),
        "n/a (RAM only)",
    ])
    return rows


def test_fig09_cost(benchmark, emit):
    table = {}

    def experiment():
        table["rows"] = run_figure9()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    # Note: the Tiera cost column adds ~$0.30 for 10 GB-equivalent S3
    # provisioning to mirror the paper's total-cost basis; the cache is
    # co-located (no marginal cost).
    text = format_table(
        "Figure 9 — throughput (log-scale in the paper) and monthly cost",
        ["deployment", "workload", "TPS", "cost $/month"],
        table["rows"],
        note=(
            "Paper: Tiera(MemcachedS3) ≈ EBS on read-only at a fraction "
            "of the cost; slower on read-write (S3 writes); Memory "
            "Engine ≈ 0.15 TPS."
        ),
    )
    emit("fig09_cost", text)
    by = {(r[0], r[1]): r[2] for r in table["rows"]}
    ebs_ro = by[("MySQL On EBS", "R")]
    tiera_ro = by[("MySQL On Tiera (MemcachedS3)", "R")]
    tiera_rw = by[("MySQL On Tiera (MemcachedS3)", "R/W")]
    # "Comparable" on the paper's log-scale axis: the same order of
    # magnitude on read-only, clearly degraded on read-write, at a
    # fraction of the EBS cost.
    assert tiera_ro > 0.25 * ebs_ro
    assert tiera_rw < tiera_ro
    assert by[("MySQL Memory Engine", "R/W")] < 1.0
