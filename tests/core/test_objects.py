"""Object metadata: attributes, serialization, checksums."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.objects import ObjectMeta, content_checksum


class TestChecksum:
    def test_deterministic(self):
        assert content_checksum(b"abc") == content_checksum(b"abc")

    def test_content_sensitive(self):
        assert content_checksum(b"abc") != content_checksum(b"abd")


class TestObjectMeta:
    def test_touch_updates_recency_and_frequency(self):
        meta = ObjectMeta(key="k", created_at=0.0)
        meta.touch(10.0)
        meta.touch(20.0)
        assert meta.last_access == 20.0
        assert meta.access_count == 2
        assert meta.access_frequency(20.0) == pytest.approx(0.1)

    def test_modified_bumps_version(self):
        meta = ObjectMeta(key="k")
        meta.modified(5.0)
        assert meta.version == 1
        assert meta.last_modified == 5.0

    def test_in_tier(self):
        meta = ObjectMeta(key="k", locations={"tier1"})
        assert meta.in_tier("tier1")
        assert not meta.in_tier("tier2")

    def test_json_roundtrip(self):
        meta = ObjectMeta(
            key="k", size=42, locations={"a", "b"}, dirty=True,
            tags={"tmp"}, created_at=1.0, last_access=2.0, last_modified=3.0,
            access_count=7, version=2, checksum="ff", compressed=True,
            encrypted=True, alias_of="other", refcount=3,
        )
        restored = ObjectMeta.from_json(meta.to_json())
        assert restored == meta

    @given(
        key=st.text(min_size=1, max_size=30),
        size=st.integers(min_value=0, max_value=2 ** 40),
        locations=st.sets(st.sampled_from(["t1", "t2", "t3"])),
        dirty=st.booleans(),
        tags=st.sets(st.text(max_size=8), max_size=4),
        access_count=st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_json_roundtrip_property(
        self, key, size, locations, dirty, tags, access_count
    ):
        meta = ObjectMeta(
            key=key, size=size, locations=locations, dirty=dirty,
            tags=tags, access_count=access_count,
        )
        assert ObjectMeta.from_json(meta.to_json()) == meta
