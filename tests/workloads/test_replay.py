"""Trace recording and replay."""

import pytest

from repro.core.server import TieraServer
from repro.core.templates import low_latency_instance, memcached_ebs_instance
from repro.simcloud.cluster import Cluster
from repro.simcloud.resources import RequestContext
from repro.tiers.registry import TierRegistry
from repro.workloads.replay import TraceRecorder, TraceReplayer, load_trace


@pytest.fixture
def server(registry):
    return TieraServer(memcached_ebs_instance(registry, mem="8M", ebs="8M"))


class TestRecorder:
    def test_records_all_op_kinds(self, server, cluster):
        with TraceRecorder(server) as recorder:
            server.put("a", b"x" * 100)
            server.get("a")
            server.delete("a")
        kinds = [event["op"] for event in recorder.events]
        assert kinds == ["put", "get", "delete"]
        assert recorder.events[0]["size"] == 100

    def test_server_restored_after_exit(self, server):
        from repro.core.server import TieraServer

        with TraceRecorder(server):
            assert "put" in vars(server)  # hook installed
        assert "put" not in vars(server)  # hook removed
        assert server.put.__func__ is TieraServer.put

    def test_dump_and_load(self, server, tmp_path):
        with TraceRecorder(server) as recorder:
            server.put("a", b"1")
            server.get("a")
        path = str(tmp_path / "trace.jsonl")
        assert recorder.dump(path) == 2
        events = load_trace(path)
        assert [event["op"] for event in events] == ["put", "get"]

    def test_timestamps_monotone(self, server, cluster):
        with TraceRecorder(server) as recorder:
            ctx = RequestContext(cluster.clock)
            for i in range(5):
                server.put(f"k{i}", b"v", ctx=ctx)
        times = [event["at"] for event in recorder.events]
        assert times == sorted(times)


class TestReplayer:
    def _record(self, registry, cluster):
        source = TieraServer(memcached_ebs_instance(registry, mem="8M", ebs="8M"))
        with TraceRecorder(source) as recorder:
            ctx = RequestContext(cluster.clock)
            for i in range(20):
                source.put(f"k{i}", bytes(512), ctx=ctx)
            for i in range(20):
                source.get(f"k{i % 5}", ctx=ctx)
            cluster.clock.run_until(ctx.time)
        return recorder.events

    def test_replay_against_another_instance(self, registry, cluster):
        events = self._record(registry, cluster)
        target = TieraServer(low_latency_instance(registry, t=30, mem="8M", ebs="8M"))
        latencies = TraceReplayer(target, events).run(paced=False)
        assert len(latencies) == len(events)
        assert all(lat >= 0 for lat in latencies)
        assert target.contains("k0")

    def test_paced_replay_honours_spacing(self, registry):
        # Build a synthetic trace with 1-second spacing.
        events = [
            {"op": "put", "key": f"k{i}", "size": 64, "at": float(i)}
            for i in range(5)
        ]
        cluster = Cluster(seed=9)
        target = TieraServer(
            memcached_ebs_instance(TierRegistry(cluster), mem="8M", ebs="8M")
        )
        TraceReplayer(target, events).run(paced=True)
        # The clock advanced through the recorded 4-second span.
        assert cluster.clock.now() >= 4.0

    def test_replay_tolerates_missing_keys(self, registry, cluster):
        events = [{"op": "get", "key": "ghost", "at": 0.0},
                  {"op": "delete", "key": "ghost", "at": 0.1}]
        target = TieraServer(memcached_ebs_instance(registry, mem="8M", ebs="8M"))
        latencies = TraceReplayer(target, events).run()
        assert len(latencies) == 2

    def test_empty_trace(self, registry, cluster):
        target = TieraServer(memcached_ebs_instance(registry, mem="8M", ebs="8M"))
        assert TraceReplayer(target, []).run() == []

    def test_compare_two_instances(self, registry, cluster):
        """The intended use: one trace, two candidate specs, compare."""
        events = self._record(registry, cluster)
        fast = TieraServer(
            memcached_ebs_instance(registry, mem="8M", ebs="8M")
        )
        fast_latency = sum(TraceReplayer(fast, events).run(paced=False))
        assert fast_latency > 0


class TestPipelinedReplay:
    def _target(self, seed=9):
        cluster = Cluster(seed=seed)
        server = TieraServer(
            memcached_ebs_instance(TierRegistry(cluster), mem="8M", ebs="8M")
        )
        return cluster, server

    def _events(self, count=12):
        return [
            {"op": "put", "key": f"k{i}", "size": 64, "at": 0.0}
            for i in range(count)
        ] + [
            {"op": "get", "key": f"k{i}", "at": 0.0} for i in range(count)
        ]

    def test_depth_covers_every_event(self):
        _, target = self._target()
        latencies = TraceReplayer(target, self._events()).run(
            paced=False, depth=5
        )
        assert len(latencies) == 24
        assert target.contains("k0") and target.contains("k11")

    def test_deeper_replay_finishes_sooner(self):
        spans = {}
        for depth in (1, 4):
            cluster, target = self._target()
            TraceReplayer(target, self._events()).run(paced=False, depth=depth)
            spans[depth] = cluster.clock.now()
        assert spans[4] < spans[1]

    def test_depth_tolerates_missing_keys(self):
        _, target = self._target()
        events = [{"op": "get", "key": "ghost", "at": 0.0},
                  {"op": "delete", "key": "ghost", "at": 0.0}]
        assert len(TraceReplayer(target, events).run(depth=2)) == 2

    def test_invalid_depth_rejected(self):
        _, target = self._target()
        with pytest.raises(ValueError):
            TraceReplayer(target, self._events()).run(depth=0)
