"""Bookstore schema and deterministic catalogue generation.

TPC-W's store: items (books) with title/author/cost/description and a
thumbnail image, customers with account data, orders with line items.
The paper populates 10,000 items and 100,000 customers.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.apps.minidb.records import Column, Schema

ITEM_SCHEMA = Schema(
    [
        Column("i_id", "int"),
        Column("i_title", "str"),
        Column("i_author", "str"),
        Column("i_cost_cents", "int"),
        Column("i_stock", "int"),
        Column("i_desc", "str"),
    ]
)

CUSTOMER_SCHEMA = Schema(
    [
        Column("c_id", "int"),
        Column("c_name", "str"),
        Column("c_email", "str"),
        Column("c_since", "int"),
        Column("c_discount", "int"),
    ]
)

ORDER_SCHEMA = Schema(
    [
        Column("o_id", "int"),
        Column("o_c_id", "int"),
        Column("o_date", "int"),
        Column("o_total_cents", "int"),
        Column("o_status", "str"),
    ]
)

ORDER_LINE_SCHEMA = Schema(
    [
        Column("ol_id", "int"),  # o_id * 100 + line number
        Column("ol_o_id", "int"),
        Column("ol_i_id", "int"),
        Column("ol_qty", "int"),
    ]
)

_SUBJECTS = [
    "Arts", "Biographies", "Business", "Children", "Computers", "Cooking",
    "Health", "History", "Home", "Humor", "Literature", "Mystery",
    "Non-Fiction", "Parenting", "Politics", "Reference", "Religion",
    "Romance", "Self-Help", "Science", "Science-Fiction", "Sports",
    "Travel", "Youth",
]

_WORDS = [
    "Silent", "Golden", "Hidden", "Broken", "Ancient", "Digital", "Lost",
    "Final", "Burning", "Secret", "Winter", "Crimson", "Hollow", "Iron",
    "Paper", "Glass", "Empty", "Endless", "Quiet", "Distant",
]

_NOUNS = [
    "River", "Empire", "Garden", "Machine", "Harbor", "Forest", "Letter",
    "Mirror", "Bridge", "Tower", "Island", "Shadow", "Voyage", "Archive",
    "Engine", "Signal", "Horizon", "Orchard", "Compass", "Ledger",
]


def item_row(item_id: int, rng: random.Random) -> Tuple:
    title = f"The {rng.choice(_WORDS)} {rng.choice(_NOUNS)} #{item_id}"
    author = f"{rng.choice(_NOUNS)}, {rng.choice(_WORDS)}"
    cost = rng.randrange(199, 14999)
    stock = rng.randrange(10, 1000)
    desc = (
        f"A {rng.choice(_SUBJECTS).lower()} title. "
        + " ".join(rng.choice(_WORDS + _NOUNS) for _ in range(40))
    )
    return (item_id, title, author, cost, stock, desc)


def customer_row(customer_id: int, rng: random.Random) -> Tuple:
    name = f"{rng.choice(_NOUNS)} {rng.choice(_WORDS)}{customer_id}"
    email = f"user{customer_id}@example.com"
    since = 1_200_000_000 + rng.randrange(0, 200_000_000)
    discount = rng.randrange(0, 30)
    return (customer_id, name, email, since, discount)


def item_image(item_id: int, size: int = 5 * 1024) -> bytes:
    """A deterministic pseudo-image blob for item thumbnails."""
    rng = random.Random(item_id * 7919)
    return bytes(rng.getrandbits(8) for _ in range(256)) * (size // 256)


def page_html(name: str, size: int = 8 * 1024) -> bytes:
    """Static HTML shell for one page type."""
    body = (f"<html><head><title>TPC-W {name}</title></head><body>"
            f"<!-- {name} -->").encode("ascii")
    filler = (name.encode("ascii") + b" ") * ((size - len(body)) // (len(name) + 1) + 1)
    return (body + filler)[:size]


PAGE_NAMES = [
    "home", "search_request", "search_results", "product_detail",
    "shopping_cart", "customer_registration", "buy_request",
    "buy_confirm", "order_inquiry", "order_display", "best_sellers",
    "new_products",
]
