"""Horizontally scaled Tiera (extension: paper §6 future work).

"We also plan to employ horizontal scaling to scale [the] Tiera control
layer to be able to store very large number of objects … A distributed
control layer architecture also provides metadata management
scalability and better fault tolerance."

:class:`ShardedTieraServer` partitions the key space across several
independent Tiera instances (each with its own tiers, policy, and
metadata) using a consistent-hash ring, the technique of the Dynamo /
Cassandra line of systems the paper cites.  Shards can be added and
removed at runtime; only the keys that change owner move.
"""

from __future__ import annotations

import bisect
import hashlib
import warnings
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import api
from repro.core.api import (
    AdmissionController,
    BatchOp,
    BatchResult,
    ManagementResult,
    OpResult,
)
from repro.core.cluster import ClusterConfig, ClusterManager
from repro.core.errors import EmptyRingError, TieraError
from repro.core.server import TieraServer
from repro.obs.hub import Observability
from repro.simcloud.resources import RequestContext

VNODES = 64  # virtual nodes per shard for even key spread


def _ring_position(label: str) -> int:
    return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")


class ConsistentHashRing:
    """A classic consistent-hash ring with virtual nodes."""

    def __init__(self, vnodes: int = VNODES):
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []  # sorted (position, shard)
        self._shards: set = set()

    def add(self, shard: str) -> None:
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on the ring")
        self._shards.add(shard)
        for v in range(self.vnodes):
            point = (_ring_position(f"{shard}#{v}"), shard)
            bisect.insort(self._points, point)

    def remove(self, shard: str) -> None:
        if shard not in self._shards:
            raise KeyError(f"no shard {shard!r}")
        if len(self._shards) == 1:
            # Fail at the mutation, not at the next owner() lookup: an
            # empty ring can route nothing.
            raise EmptyRingError(
                f"removing {shard!r} would leave the ring empty"
            )
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    def owner(self, key: str) -> str:
        if not self._points:
            raise EmptyRingError("the ring has no shards")
        position = _ring_position(key)
        index = bisect.bisect_right(self._points, (position, chr(0x10FFFF)))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def owners(self, key: str, n: int) -> List[str]:
        """The first ``n`` *distinct* shards clockwise from the key's
        ring position — the key's replica set (capped at the shard
        count).  ``owners(key, 1)[0] == owner(key)``."""
        if not self._points:
            raise EmptyRingError("the ring has no shards")
        n = min(n, len(self._shards))
        position = _ring_position(key)
        index = bisect.bisect_right(self._points, (position, chr(0x10FFFF)))
        out: List[str] = []
        for step in range(len(self._points)):
            shard = self._points[(index + step) % len(self._points)][1]
            if shard not in out:
                out.append(shard)
                if len(out) == n:
                    break
        return out

    def shards(self) -> List[str]:
        return sorted(self._shards)


class ShardedTieraServer:
    """PUT/GET over a consistent-hash ring of Tiera instances.

    Each shard is an ordinary :class:`~repro.core.server.TieraServer`
    whose instance runs its own policy; by default the sharding layer
    only routes.  Adding or removing a shard triggers a minimal
    migration: exactly the keys whose ring owner changed are moved.

    Built with ``replication=ClusterConfig(...)``, the router grows a
    :class:`~repro.core.cluster.ClusterManager` and the data path
    becomes replicated and self-healing: R copies per key, quorum
    writes, checksum-verified failover reads, hinted handoff, Merkle
    anti-entropy, and journaled crash-safe migration (docs/CLUSTER.md).
    """

    def __init__(
        self,
        shards: Dict[str, TieraServer],
        vnodes: int = VNODES,
        max_inflight: int = api.DEFAULT_MAX_INFLIGHT,
        obs: Optional[Observability] = None,
        replication: Optional[ClusterConfig] = None,
        journal_store=None,
    ):
        if not shards:
            raise ValueError("need at least one shard")
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.shards: Dict[str, TieraServer] = {}
        for name, server in shards.items():
            self.shards[name] = server
            self.ring.add(name)
        first = next(iter(self.shards.values()))
        self.clock = first.clock
        # The router gets its own hub (or an explicitly shared one) so
        # routed traffic no longer pollutes the first shard's metrics
        # and traces; per-shard routing shows up under
        # ``tiera_shard_ops_total{shard=...}``.
        self.obs = obs if obs is not None else Observability(self.clock)
        self._shard_ops = self.obs.metrics.counter(
            "tiera_shard_ops_total", "Operations routed, by shard and op."
        )
        self.admission = AdmissionController(max_inflight)
        self.migrations = 0
        self.cluster: Optional[ClusterManager] = None
        if replication is not None:
            self.cluster = ClusterManager(
                self, replication, journal_store=journal_store
            )
            self.cluster.start()

    def _shard_for(self, key: str) -> TieraServer:
        return self.shards[self.ring.owner(key)]

    def _route(self, key: str, op: str) -> TieraServer:
        shard = self.ring.owner(key)
        self._shard_ops.inc(shard=shard, op=op)
        return self.shards[shard]

    # -- the StorageAPI surface, routed -------------------------------------

    def put_object(
        self,
        key: str,
        data: bytes,
        *,
        tags: Optional[List[str]] = None,
        ctx: Optional[RequestContext] = None,
        trace: bool = False,
    ) -> OpResult:
        if self.cluster is not None:
            return self.cluster.put_object(
                key, data, tags=tags, ctx=ctx, trace=trace
            )
        return self._route(key, api.PUT).put_object(
            key, data, tags=tags, ctx=ctx, trace=trace
        )

    def get_object(
        self,
        key: str,
        *,
        prefer: Optional[str] = None,
        ctx: Optional[RequestContext] = None,
        trace: bool = False,
    ) -> OpResult:
        if self.cluster is not None:
            return self.cluster.get_object(
                key, prefer=prefer, ctx=ctx, trace=trace
            )
        return self._route(key, api.GET).get_object(
            key, prefer=prefer, ctx=ctx, trace=trace
        )

    def delete_object(
        self,
        key: str,
        *,
        ctx: Optional[RequestContext] = None,
        trace: bool = False,
    ) -> OpResult:
        if self.cluster is not None:
            return self.cluster.delete_object(key, ctx=ctx, trace=trace)
        return self._route(key, api.DELETE).delete_object(
            key, ctx=ctx, trace=trace
        )

    def execute_batch(
        self,
        ops: Sequence[BatchOp],
        *,
        parallelism: int = api.DEFAULT_PARALLELISM,
        ctx: Optional[RequestContext] = None,
        trace: bool = False,
    ) -> BatchResult:
        """Fan a batch out to the shards that own its keys.

        Ops group by ring owner (preserving submission indices), each
        shard runs its sub-batch on its own branch of a scatter/join —
        shards are independent instances, so the router pays the slowest
        shard, not the sum — and results reassemble into submission
        order.  Admission is enforced at the router on the whole batch
        before any shard sees work.  With tracing on, the router opens
        the batch root and a ``shard`` child per sub-batch; each shard's
        per-item ``op`` spans nest under its shard span.
        """
        if self.cluster is not None:
            return self.cluster.execute_batch(
                ops, parallelism=parallelism, ctx=ctx, trace=trace
            )
        ops = list(ops)
        if parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        ctx = ctx if ctx is not None else RequestContext(self.clock)
        self.admission.acquire(len(ops))
        root = self.obs.tracer.start_request(
            "batch", f"{len(ops)} ops", ctx, force=trace
        )
        started = ctx.time
        try:
            groups: Dict[str, List[Tuple[int, BatchOp]]] = {}
            for index, op in enumerate(ops):
                owner = self.ring.owner(op.key)
                self._shard_ops.inc(shard=owner, op=op.op)
                groups.setdefault(owner, []).append((index, op))
            results: List[Optional[OpResult]] = [None] * len(ops)
            branches = ctx.scatter()
            for shard_name in sorted(groups):
                sub = groups[shard_name]
                bctx = branches.branch()
                span = None
                if root is not None:
                    span = root.child(
                        shard_name, "shard", bctx.time,
                        shard=shard_name, items=len(sub),
                    )
                    bctx.span = span
                sub_result = self.shards[shard_name].execute_batch(
                    [op for _, op in sub],
                    parallelism=parallelism,
                    ctx=bctx,
                )
                if span is not None:
                    span.finish(bctx.time)
                    bctx.span = None
                for (index, _), item in zip(sub, sub_result.results):
                    results[index] = item
            branches.join()
        finally:
            self.admission.release(len(ops))
        if root is not None:
            root.attrs["items"] = len(ops)
            root.attrs["shards"] = len(groups)
        self.obs.tracer.finish_request(root, ctx)
        return BatchResult(
            results=results,
            latency=ctx.time - started,
            parallelism=min(parallelism, max(1, len(ops))),
        )

    def put_many(
        self,
        items: Iterable[Tuple[str, bytes]],
        *,
        tags: Optional[List[str]] = None,
        parallelism: int = api.DEFAULT_PARALLELISM,
        ctx: Optional[RequestContext] = None,
    ) -> BatchResult:
        return self.execute_batch(
            api.batch_from_verbs(api.PUT, items, tags=tags),
            parallelism=parallelism, ctx=ctx,
        )

    def get_many(
        self,
        keys: Iterable[str],
        *,
        parallelism: int = api.DEFAULT_PARALLELISM,
        ctx: Optional[RequestContext] = None,
    ) -> BatchResult:
        return self.execute_batch(
            api.batch_from_verbs(api.GET, keys),
            parallelism=parallelism, ctx=ctx,
        )

    def delete_many(
        self,
        keys: Iterable[str],
        *,
        parallelism: int = api.DEFAULT_PARALLELISM,
        ctx: Optional[RequestContext] = None,
    ) -> BatchResult:
        return self.execute_batch(
            api.batch_from_verbs(api.DELETE, keys),
            parallelism=parallelism, ctx=ctx,
        )

    # -- legacy verbs (deprecated; same shapes as TieraServer's shims) -------

    def put(
        self,
        key: str,
        data: bytes,
        tags: Optional[Iterable[str]] = None,
        ctx: Optional[RequestContext] = None,
        trace: bool = False,
    ) -> RequestContext:
        """Deprecated: use :meth:`put_object`.  Signature and return
        shape now match :meth:`TieraServer.put` (this façade used to
        take ``tags=()`` and lacked ``trace``)."""
        if self.cluster is not None:
            ctx = ctx if ctx is not None else RequestContext(self.clock)
            self.cluster.put_object(
                key, data, tags=list(tags) if tags else None, ctx=ctx,
                trace=trace,
            ).raise_for_error()
            return ctx
        return self._route(key, api.PUT).put(
            key, data, tags=tuple(tags) if tags else (), ctx=ctx, trace=trace
        )

    def get(
        self,
        key: str,
        ctx: Optional[RequestContext] = None,
        prefer: Optional[str] = None,
        trace: bool = False,
    ) -> bytes:
        """Deprecated: use :meth:`get_object`."""
        if self.cluster is not None:
            result = self.cluster.get_object(
                key, prefer=prefer, ctx=ctx, trace=trace
            )
            result.raise_for_error()
            return result.value
        return self._route(key, api.GET).get(
            key, ctx=ctx, prefer=prefer, trace=trace
        )

    def delete(
        self,
        key: str,
        ctx: Optional[RequestContext] = None,
        trace: bool = False,
    ) -> RequestContext:
        """Deprecated: use :meth:`delete_object`."""
        if self.cluster is not None:
            ctx = ctx if ctx is not None else RequestContext(self.clock)
            self.cluster.delete_object(
                key, ctx=ctx, trace=trace
            ).raise_for_error()
            return ctx
        return self._route(key, api.DELETE).delete(key, ctx=ctx, trace=trace)

    def contains(self, key: str) -> bool:
        if self.cluster is not None:
            return self.cluster.contains(key)
        return self._shard_for(key).contains(key)

    def stat(self, key: str):
        if self.cluster is not None:
            return self.cluster.stat(key)
        return self._shard_for(key).stat(key)

    def keys(self) -> List[str]:
        seen = set()
        for server in self.shards.values():
            seen.update(server.keys())
        return sorted(seen)

    def shard_of(self, key: str) -> str:
        return self.ring.owner(key)

    def object_counts(self) -> Dict[str, int]:
        return {
            name: server.instance.object_count()
            for name, server in self.shards.items()
        }

    def health(self) -> Dict[str, object]:
        """Router-level liveness summary: per-shard status plus (when
        replication is on) the cluster layer's detector/hints/journal
        view."""
        shard_health: Dict[str, object] = {}
        status = "ok"
        for name in sorted(self.shards):
            entry = self.shards[name].health()
            shard_health[name] = {
                "status": entry["status"],
                "objects": entry["objects"],
            }
            if entry["status"] != "ok" and status == "ok":
                status = "degraded"
        out: Dict[str, object] = {
            "time": self.clock.now(),
            "status": status,
            "shards": shard_health,
            "migrations": self.migrations
            if self.cluster is None else self.cluster.migrations,
        }
        if self.cluster is not None:
            summary = self.cluster.summary()
            out["cluster"] = summary
            if any(state != "up" for state in summary["shards"].values()):
                out["status"] = "degraded"
        heat = self.heat_summary()
        if heat.get("enabled"):
            out["heat"] = {
                "accesses": heat["accesses"]["total"],
                "tracked": heat["tracked_objects"],
                "hot_keys": heat["hot_keys"],
                "skew": heat["skew"],
                "churn": heat["churn"],
            }
        return out

    # -- unified management API ----------------------------------------------

    def configure(self, feature: str, **options) -> ManagementResult:
        """Fan ``configure`` out to every shard (the ManagementAPI verb).

        With one shard the envelope is returned unchanged, so the parity
        suite can byte-compare it against the direct façade.  With
        several, the router aggregates: ``ok``/``enabled`` are the
        conjunction, ``state`` nests per-shard states, and the first
        error (in shard order) surfaces as the envelope's error.
        """
        return self._aggregate_management([
            (name, self.shards[name].configure(feature, **options))
            for name in sorted(self.shards)
        ])

    def feature_status(self, feature: str) -> ManagementResult:
        """Fan ``feature_status`` out to every shard and aggregate."""
        return self._aggregate_management([
            (name, self.shards[name].feature_status(feature))
            for name in sorted(self.shards)
        ])

    @staticmethod
    def _aggregate_management(
        results: Sequence[Tuple[str, ManagementResult]]
    ) -> ManagementResult:
        if len(results) == 1:
            return results[0][1]
        first = results[0][1]
        failed = next((r for _, r in results if not r.ok), None)
        return ManagementResult(
            feature=first.feature,
            action=first.action,
            ok=all(r.ok for _, r in results),
            enabled=all(r.enabled for _, r in results),
            state={"shards": {name: r.state for name, r in results}},
            error=failed.error if failed is not None else None,
            error_message=(
                failed.error_message if failed is not None else None
            ),
        )

    # -- adaptive placement --------------------------------------------------

    def _per_shard(self, verb: str) -> Dict[str, object]:
        """Single-shard identity, multi-shard ``{"shards": {...}}`` nest."""
        results = {
            name: getattr(self.shards[name], verb)()
            for name in sorted(self.shards)
        }
        if len(results) == 1:
            return next(iter(results.values()))
        return {
            "enabled": any(r.get("enabled", True) for r in results.values()),
            "shards": results,
        }

    def placement_status(self) -> Dict[str, object]:
        return self._per_shard("placement_status")

    def placement_plan(self) -> Dict[str, object]:
        return self._per_shard("placement_plan")

    def placement_run(self) -> Dict[str, object]:
        return self._per_shard("placement_run")

    # -- workload heat -------------------------------------------------------

    def enable_heat(self, **config):
        """Deprecated: use ``configure("heat", ...)`` instead.

        Returns the per-shard tracker acks in shard-name order (the old
        signature returned ``None`` — callers can only gain).
        """
        warnings.warn(
            "ShardedTieraServer.enable_heat is deprecated; use "
            'configure("heat", ...) (see docs/API.md)',
            DeprecationWarning,
            stacklevel=2,
        )
        acks = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name in sorted(self.shards):
                acks[name] = self.shards[name].enable_heat(**config)
        return acks

    def heat_summary(self, limit: Optional[int] = None) -> Dict[str, object]:
        """Cluster-wide heat view: per-shard trackers aggregated.

        Keys route to exactly one shard, so per-shard hot lists merge
        disjointly (union → re-rank → truncate) while tier traffic and
        occupancy sum; see :func:`repro.obs.heat.merge_summaries`.
        With one shard the snapshot is byte-identical to the direct
        facade's (the parity suite pins this).
        """
        from repro.obs.heat import merge_summaries

        return merge_summaries([
            self.shards[name].heat_summary(limit=limit)
            for name in sorted(self.shards)
        ])

    # -- elasticity ---------------------------------------------------------

    def add_shard(self, name: str, server: TieraServer) -> int:
        """Join a shard and migrate the keys it now owns; returns the
        number of objects moved.  With replication on, the migration is
        journaled and crash-safe (see ClusterManager.add_shard)."""
        if self.cluster is not None:
            return self.cluster.add_shard(name, server)
        before = {key: self.ring.owner(key) for key in self.keys()}
        self.shards[name] = server
        self.ring.add(name)
        return self._migrate(before)

    def remove_shard(self, name: str) -> int:
        """Drain and remove a shard; returns the objects moved off it."""
        if self.cluster is not None:
            moved = self.cluster.remove_shard(name)
            self.migrations = self.cluster.migrations
            return moved
        if name not in self.shards:
            raise KeyError(f"no shard {name!r}")
        if len(self.shards) == 1:
            raise TieraError("cannot remove the last shard")
        departing = self.shards[name]
        keys = departing.keys()
        self.ring.remove(name)
        moved = 0
        for key in keys:
            data = departing.get_object(key).raise_for_error().value
            meta = departing.stat(key)
            target = self.shards[self.ring.owner(key)]
            target.put_object(key, data, tags=sorted(meta.tags)).raise_for_error()
            departing.delete_object(key).raise_for_error()
            moved += 1
        del self.shards[name]
        self.migrations += moved
        return moved

    def _migrate(self, previous_owners: Dict[str, str]) -> int:
        moved = 0
        for key, old_owner in previous_owners.items():
            new_owner = self.ring.owner(key)
            if new_owner == old_owner:
                continue
            source = self.shards[old_owner]
            fetched = source.get_object(key)
            if not fetched.ok:
                continue
            meta = source.stat(key)
            self.shards[new_owner].put_object(
                key, fetched.value, tags=sorted(meta.tags)
            ).raise_for_error()
            source.delete_object(key).raise_for_error()
            moved += 1
        self.migrations += moved
        return moved
