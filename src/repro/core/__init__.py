"""Tiera core: the paper's contribution.

A :class:`~repro.core.instance.TieraInstance` encapsulates a set of
storage tiers plus a policy — an ordered list of **event → response**
rules — and a :class:`~repro.core.server.TieraServer` exposes the
PUT/GET application interface over it.  Events are *action* events
(insert/delete/get), *timer* events, and *threshold* events
(foreground or background); responses are the Table 1 catalogue
(``store`` … ``shrink``) plus the extensions the paper lists as future
work (snapshot, versioning).
"""

from repro.core.actions import Action
from repro.core.api import (
    AdmissionController,
    BatchOp,
    BatchResult,
    OpResult,
    StorageAPI,
)
from repro.core.conditions import (
    And,
    AttrRef,
    Comparison,
    Condition,
    Literal,
    Not,
    Or,
    TierFull,
)
from repro.core.errors import (
    BackpressureError,
    NoSuchObjectError,
    PolicyError,
    TierUnavailableError,
    TieraError,
    UnknownTierError,
    code_for,
)
from repro.core.events import ActionEvent, Event, ThresholdEvent, TimerEvent
from repro.core.instance import DROP, TieraInstance
from repro.core.objects import ObjectMeta
from repro.core.policy import Policy, Rule
from repro.core.selectors import (
    AllObjects,
    InsertObject,
    NamedObjects,
    ObjectsWhere,
    Selector,
    TaggedObjects,
    TierNewest,
    TierOldest,
)
from repro.core.server import TieraServer
from repro.core.tierset import TierSet

__all__ = [
    "Action",
    "AdmissionController",
    "BackpressureError",
    "BatchOp",
    "BatchResult",
    "DROP",
    "ActionEvent",
    "AllObjects",
    "And",
    "AttrRef",
    "Comparison",
    "Condition",
    "Event",
    "InsertObject",
    "Literal",
    "NamedObjects",
    "NoSuchObjectError",
    "Not",
    "ObjectMeta",
    "ObjectsWhere",
    "OpResult",
    "Or",
    "Policy",
    "PolicyError",
    "Rule",
    "Selector",
    "StorageAPI",
    "TaggedObjects",
    "ThresholdEvent",
    "TierFull",
    "TierNewest",
    "TierOldest",
    "TierSet",
    "TierUnavailableError",
    "TieraError",
    "TieraInstance",
    "TieraServer",
    "TimerEvent",
    "UnknownTierError",
    "code_for",
]
