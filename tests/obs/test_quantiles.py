"""Histogram quantiles: exact small-sample reservoir vs bucket estimates."""

import json

import pytest

from repro.obs.registry import EXACT_RESERVOIR, Histogram


def test_exact_quantiles_for_small_samples():
    h = Histogram("h")
    for value in (0.001, 0.002, 0.004, 0.010):
        h.observe(value)
    # Nearest-rank over the raw values: no bucket smearing.
    assert h.quantile(0.5) == 0.002
    assert h.quantile(0.75) == 0.004
    assert h.quantile(0.99) == 0.010
    assert h.quantile(1.0) == 0.010
    assert h.quantile(0.0) == 0.001


def test_percentile_is_quantile_in_percent():
    h = Histogram("h")
    for value in (0.001, 0.002, 0.004, 0.010):
        h.observe(value)
    assert h.percentile(50) == h.quantile(0.5)
    assert h.percentile(99) == h.quantile(0.99)


def test_exact_vs_bucket_estimates_on_known_distribution():
    """Uniform values inside one wide bucket: the exact path nails the
    median; interpolation over the same data is close but not exact."""
    values = [0.010 + 0.0002 * i for i in range(100)]  # inside (3e-3, 1e-2]..
    exact = Histogram("exact")
    bucketed = Histogram("bucketed")
    for v in values:
        exact.observe(v)
    # Overflow the reservoir so the second histogram must interpolate.
    for v in values * ((EXACT_RESERVOIR // len(values)) + 1):
        bucketed.observe(v)
    true_median = sorted(values)[49]
    assert exact.quantile(0.5) == true_median
    estimate = bucketed.quantile(0.5)
    assert estimate != true_median  # interpolation, not exact
    # ...but within the covering bucket's width of the truth.
    assert abs(estimate - true_median) < 0.03


def test_bucket_interpolation_is_monotone():
    h = Histogram("h")
    for i in range(1000):
        h.observe(0.0001 * (i % 97) + 1e-5)
    qs = [h.quantile(q / 100) for q in range(0, 101, 5)]
    assert qs == sorted(qs)


def test_overflow_reports_last_finite_bound():
    h = Histogram("h", buckets=(0.1, 1.0))
    for _ in range(EXACT_RESERVOIR + 10):
        h.observe(50.0)  # everything beyond the last bound
    assert h.quantile(0.99) == 1.0


def test_quantile_validation_and_empty_cell():
    h = Histogram("h")
    assert h.quantile(0.5) == 0.0
    assert h.quantile(0.5, op="missing") == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_labelled_cells_keep_independent_reservoirs():
    h = Histogram("h")
    h.observe(0.001, op="get")
    h.observe(0.5, op="put")
    assert h.quantile(0.5, op="get") == 0.001
    assert h.quantile(0.5, op="put") == 0.5


def test_sample_dict_carries_percentiles_and_is_json_safe():
    h = Histogram("h")
    for value in (0.001, 0.002, 0.004, 0.010, 10.0):
        h.observe(value, op="get")
    samples = h.sample_dict()
    cell = samples["op=get"]
    assert cell["count"] == 5
    assert cell["p50"] == 0.004
    assert cell["p99"] == 10.0
    # The overflow bound is the string "+Inf": strict JSON survives.
    assert cell["buckets"][-1] == ["+Inf", 5]
    round_tripped = json.loads(json.dumps(samples))
    assert round_tripped["op=get"]["count"] == 5
