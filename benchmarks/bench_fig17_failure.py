"""Figure 17: surviving an EBS outage by runtime reconfiguration.

Paper setup: a write-through Memcached+EBS instance under a YCSB
write-only workload over a 10-minute window.  EBS writes start timing
out at t ≈ 4 min (simulating the 2011 outage); an external monitor
writing canaries every 2 minutes detects the failure around t ≈ 6 min
and reconfigures the instance to Ephemeral + S3 (with a 2-minute
backup rule).

Paper result: throughput drops to zero between t ≈ 4 and t ≈ 6 min and
is restored to its original level by t ≈ 7 min.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.bench.runner import run_closed_loop
from repro.core.server import TieraServer
from repro.core.templates import (
    ephemeral_s3_reconfiguration,
    write_through_instance,
)
from repro.monitor import StorageMonitor
from repro.simcloud.cluster import Cluster
from repro.simcloud.resources import RequestContext
from repro.tiers.registry import TierRegistry
from repro.workloads.ycsb import write_only

RECORDS = 200
CLIENTS = 4
WINDOW = 600.0        # the 10-minute window
FAILURE_AT = 245.0    # EBS dies at t ≈ 4 min
PROBE_INTERVAL = 120.0


def run_figure17(resilient: bool = False, think_time: float = 0.0):
    """The outage window, optionally with the resilience layer enabled.

    ``resilient=True`` is the "with resilience layer" variant: circuit
    breakers fail the dead EBS tier fast and writes degrade to the
    surviving Memcached tier (leaving repair tasks queued), so clients
    ride through the outage and the monitor's canaries keep succeeding
    — no reconfiguration ever triggers.  The resilient run adds a small
    ``think_time``: degraded writes land in Memcached at ~0.2 ms, and an
    unthrottled closed loop would issue millions of operations over the
    window (its assertions compare rates within the run, so pacing both
    phases equally changes nothing it checks).
    """
    cluster = Cluster(seed=1717)
    registry = TierRegistry(cluster)
    instance = write_through_instance(registry, mem="64M", ebs="64M")
    server = TieraServer(instance)
    if resilient:
        instance.enable_resilience()

    events = {}

    def repair():
        events["repaired_at"] = cluster.clock.now()
        tiers, rules = ephemeral_s3_reconfiguration(registry, backup_interval=120)
        instance.reconfigure(
            add_tiers=tiers,
            remove_tiers=["tier1", "tier2"],
            replace_policy=rules,
        )

    StorageMonitor(server, repair, probe_interval=PROBE_INTERVAL).start()
    workload = write_only(server, RECORDS, seed=7)
    ctx = RequestContext(cluster.clock)
    workload.load(ctx=ctx)
    cluster.clock.run_until(ctx.time)
    base = cluster.clock.now()
    cluster.clock.schedule(
        FAILURE_AT, lambda: instance.tiers.get("tier2").service.fail()
    )
    result = run_closed_loop(
        cluster.clock, clients=CLIENTS, duration=WINDOW,
        op_fn=workload, series_bucket=60.0, think_time=think_time,
    )
    rows = [
        [int(start // 60), round(rate, 1)]
        for start, rate in result.throughput_series.rate()
    ]
    # Buckets with zero completions do not appear in the series: fill.
    present = {row[0] for row in rows}
    for minute in range(int(WINDOW // 60)):
        if minute not in present:
            rows.append([minute, 0.0])
    rows.sort()
    events["errors"] = result.errors
    events.setdefault("repaired_at", None)
    if events["repaired_at"] is not None:
        events["repaired_minute"] = (events["repaired_at"] - base) / 60.0
    if resilient:
        res = instance.resilience
        events["pending_repairs"] = res.repair_queue.pending()
        events["degraded_writes"] = res.degraded_write_count
        events["breaker"] = res.breaker_states().get("tier2", {}).get("state")
    return rows, events


def test_fig17_failure(benchmark, emit):
    table = {}

    def experiment():
        table["rows"], table["events"] = run_figure17()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    events = table["events"]
    note = (
        "Paper: throughput → 0 between t≈4 min (EBS failure) and "
        "t≈6 min (monitor detects, reconfigures to Ephemeral+S3), "
        "restored by t≈7 min.  "
        f"Repair happened at minute {events.get('repaired_minute', 0):.1f}; "
        f"{events['errors']} writes failed during the outage."
    )
    text = format_table(
        "Figure 17 — ops/sec over the 10-minute outage window",
        ["minute", "ops/sec"],
        table["rows"],
        note=note,
    )
    emit("fig17_failure", text)
    rates = dict((row[0], row[1]) for row in table["rows"])
    healthy_before = rates[1]
    outage = min(rates[4], rates[5])
    recovered = rates[8]
    assert healthy_before > 50
    assert outage < 0.2 * healthy_before        # the outage is visible
    assert recovered > 0.7 * healthy_before     # service restored
    assert events["errors"] > 0
    assert 4.0 <= events["repaired_minute"] <= 7.0


def test_fig17_failure_resilient(benchmark, emit):
    """The same outage with the resilience layer: no visible outage.

    The breaker opens after three timed-out writes, subsequent writes
    fail fast and degrade to Memcached (queueing repairs), the
    monitor's canaries keep succeeding so reconfiguration never fires —
    and client throughput barely dips where the baseline drops to zero.
    """
    table = {}

    def experiment():
        table["rows"], table["events"] = run_figure17(
            resilient=True, think_time=0.02
        )

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    events = table["events"]
    note = (
        "Same seed and failure schedule as the baseline Figure 17 run; "
        "the resilience layer rides through the outage instead of "
        "waiting for the monitor.  "
        f"{events['degraded_writes']} writes degraded to Memcached, "
        f"{events['pending_repairs']} repairs still queued for EBS "
        f"(it never recovers), tier2 breaker {events['breaker']!r}, "
        f"{events['errors']} client-visible errors."
    )
    text = format_table(
        "Figure 17 (with resilience layer) — ops/sec over the outage window",
        ["minute", "ops/sec"],
        table["rows"],
        note=note,
    )
    emit("fig17_failure_resilient", text)
    rates = dict((row[0], row[1]) for row in table["rows"])
    healthy_before = rates[1]
    outage_floor = min(rates[5], rates[6], rates[7])
    assert healthy_before > 50
    # Where the baseline drops to ~0 for two minutes, the resilient run
    # keeps serving at better than half its healthy rate.
    assert outage_floor > 0.5 * healthy_before
    assert events["errors"] == 0                  # no client saw the outage
    assert events["repaired_at"] is None          # monitor never triggered
    assert events["degraded_writes"] > 0
    assert events["pending_repairs"] > 0          # EBS stayed dead
    assert events["breaker"] == "open"
